//! One bench per paper artifact: the end-to-end cost of regenerating each
//! table and figure (at the experiment drivers' full scale for the cheap
//! ones, reduced sampling for the management sweeps via the drivers'
//! seeds — the drivers themselves fix their scale).

use criterion::{criterion_group, criterion_main, Criterion};
use livephase_experiments::{
    fig02, fig03, fig04, fig05, fig06, fig07, fig10, fig11, fig12, fig13, table1, table2,
};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(|| black_box(table1::run())));
    c.bench_function("table2", |b| b.iter(|| black_box(table2::run())));
}

fn bench_prediction_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("prediction_figures");
    group.sample_size(10);
    group.bench_function("fig02_applu_trace", |b| {
        b.iter(|| black_box(fig02::run(42)))
    });
    group.bench_function("fig03_quadrants", |b| b.iter(|| black_box(fig03::run(42))));
    group.bench_function("fig04_accuracy_sweep", |b| {
        b.iter(|| black_box(fig04::run(42)))
    });
    group.bench_function("fig05_pht_sweep", |b| b.iter(|| black_box(fig05::run(42))));
    group.finish();
}

fn bench_characterization_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization_figures");
    group.sample_size(10);
    group.bench_function("fig06_space", |b| b.iter(|| black_box(fig06::run(42))));
    group.bench_function("fig07_frequency_sweep", |b| {
        b.iter(|| black_box(fig07::run(42)))
    });
    group.finish();
}

fn bench_management_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("management_figures");
    group.sample_size(10);
    group.bench_function("fig10_daq_run", |b| b.iter(|| black_box(fig10::run(42))));
    group.bench_function("fig11_full_sweep", |b| b.iter(|| black_box(fig11::run(42))));
    group.bench_function("fig12_head_to_head", |b| {
        b.iter(|| black_box(fig12::run(42)))
    });
    group.bench_function("fig13_conservative", |b| {
        b.iter(|| black_box(fig13::run(42)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_prediction_figures,
    bench_characterization_figures,
    bench_management_figures
);
criterion_main!(benches);
