//! Decision-engine throughput: the per-sample `step` entry point versus
//! the batched `step_many` path that amortizes per-pid map lookups and
//! output allocation across a whole shard queue drain.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livephase_engine::{Decision, DecisionEngine, EngineConfig, Sample};
use livephase_workloads::{counter_samples, spec};
use std::hint::black_box;

const BATCH: usize = 10_000;
const PIDS: u32 = 16;

/// A 10k-sample batch drawn from a real workload trace, round-robined
/// across 16 pids the way a shard's drained queue interleaves sessions.
fn batch_samples() -> Vec<Sample> {
    let trace = spec::benchmark("applu_in")
        .expect("registered")
        .with_length(BATCH / PIDS as usize + 1)
        .generate(1);
    let per_pid: Vec<(u64, u64)> = counter_samples(&trace)
        .map(|s| (s.uops, s.mem_transactions))
        .collect();
    let mut samples = Vec::with_capacity(BATCH);
    'outer: for &(uops, mem_transactions) in &per_pid {
        for pid in 0..PIDS {
            samples.push(Sample {
                pid,
                uops,
                mem_transactions,
            });
            if samples.len() == BATCH {
                break 'outer;
            }
        }
    }
    samples
}

fn engine() -> DecisionEngine {
    DecisionEngine::from_spec(EngineConfig::pentium_m(), "gpht:8:128").expect("valid spec")
}

fn bench_step_vs_step_many(c: &mut Criterion) {
    let samples = batch_samples();
    let mut group = c.benchmark_group("engine_batch_10k");
    group.throughput(Throughput::Elements(samples.len() as u64));
    group.bench_function("step", |b| {
        b.iter(|| {
            let mut engine = engine();
            let mut last = 0u8;
            for sample in &samples {
                last = engine.step(sample).op_point;
            }
            black_box(last)
        });
    });
    group.bench_function("step_many", |b| {
        let mut decisions: Vec<Decision> = Vec::with_capacity(samples.len());
        b.iter(|| {
            let mut engine = engine();
            decisions.clear();
            engine.step_many(&samples, &mut decisions);
            black_box(decisions.last().map_or(0, |d| d.op_point))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_step_vs_step_many);
criterion_main!(benches);
