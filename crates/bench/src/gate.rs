//! The calibrated regression gate ci.sh runs.
//!
//! A record fails when its measured ratio exceeds `multiplier ×
//! expected_ratio` **and** its median exceeds an absolute floor — the
//! floor keeps sub-microsecond areas from failing on clock
//! granularity. When the calibration itself is too noisy to trust
//! (relative MAD above [`GateConfig::max_variance`]), the gate refuses
//! to judge and reports a loud [`GateOutcome::Skip`] instead of a
//! meaningless verdict; ci.sh prints the reason and moves on.

use crate::calibrate::Calibration;
use crate::record::BenchRecord;

/// Gate thresholds. Defaults are deliberately loose — the gate exists
/// to catch order-of-magnitude regressions (an accidental `O(n²)`, a
/// lock on the hot path), not 10% drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// A record fails when `ratio > multiplier × expected_ratio`.
    /// `LIVEPHASE_BENCH_STRICT=1` in ci.sh tightens this to 2×.
    pub multiplier: f64,
    /// Absolute floor: medians at or below this never fail, whatever
    /// the ratio says.
    pub floor_ns: u64,
    /// Calibration relative-MAD bound above which the gate skips.
    pub max_variance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            multiplier: 5.0,
            floor_ns: 20_000,
            max_variance: 0.25,
        }
    }
}

impl GateConfig {
    /// The strict profile (`LIVEPHASE_BENCH_STRICT=1`).
    #[must_use]
    pub fn strict() -> Self {
        Self {
            multiplier: 2.0,
            ..Self::default()
        }
    }

    /// The failing threshold for one area, in nanoseconds.
    #[must_use]
    pub fn threshold_ns(&self, expected_ratio: f64, calibration: &Calibration) -> u64 {
        #[allow(clippy::cast_precision_loss)]
        let scaled = self.multiplier * expected_ratio * calibration.baseline_ns as f64;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let scaled = if scaled.is_finite() && scaled > 0.0 {
            scaled.min(u64::MAX as f64) as u64
        } else {
            0
        };
        scaled.max(self.floor_ns)
    }
}

/// What the gate concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateOutcome {
    /// Every record under threshold.
    Pass,
    /// The machine was too noisy to judge; the string says why.
    Skip(String),
    /// One finding line per failing record.
    Fail(Vec<String>),
}

/// Judges a set of records against one calibration.
#[must_use]
pub fn evaluate(
    config: &GateConfig,
    calibration: &Calibration,
    records: &[BenchRecord],
) -> GateOutcome {
    let variance = calibration.variance();
    if variance > config.max_variance {
        return GateOutcome::Skip(format!(
            "calibration too noisy to gate on: relative MAD {variance:.3} exceeds the {:.3} sanity bound \
             (baseline {} ns, MAD {} ns over {} reps); rerun on a quieter machine",
            config.max_variance, calibration.baseline_ns, calibration.mad_ns, calibration.reps
        ));
    }
    let mut findings = Vec::new();
    for r in records {
        let threshold = config.threshold_ns(r.expected_ratio, calibration);
        if r.summary.median_ns > threshold {
            findings.push(format!(
                "{}: median {} ns exceeds threshold {} ns (ratio {:.3} vs expected {:.3} × {:.1})",
                r.area,
                r.summary.median_ns,
                threshold,
                r.ratio(),
                r.expected_ratio,
                config.multiplier
            ));
        }
    }
    if findings.is_empty() {
        GateOutcome::Pass
    } else {
        GateOutcome::Fail(findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Machine;
    use crate::stats::Summary;

    fn calibration() -> Calibration {
        Calibration {
            baseline_ns: 1_000_000,
            mad_ns: 10_000,
            reps: 15,
        }
    }

    fn record(area: &str, median_ns: u64, expected_ratio: f64) -> BenchRecord {
        BenchRecord {
            area: area.to_owned(),
            summary: Summary::from_ns(&[median_ns]).unwrap(),
            warmup: 0,
            calibration: calibration(),
            expected_ratio,
            machine: Machine {
                host: "test".to_owned(),
                cpu: "test".to_owned(),
                cores: 1,
            },
            git_rev: "unknown".to_owned(),
            unix_ms: 0,
        }
    }

    #[test]
    fn clean_records_pass() {
        // expected 0.1 × baseline 1ms → threshold 5 × 100µs = 500µs.
        let records = vec![record("a", 100_000, 0.1), record("b", 499_999, 0.1)];
        assert_eq!(
            evaluate(&GateConfig::default(), &calibration(), &records),
            GateOutcome::Pass
        );
    }

    #[test]
    fn a_ten_x_slowdown_fails_with_a_named_finding() {
        // Honest cost would be ~100µs; a 10× regression lands at 1ms.
        let records = vec![record("wire_encode", 1_000_000, 0.1)];
        let GateOutcome::Fail(findings) =
            evaluate(&GateConfig::default(), &calibration(), &records)
        else {
            panic!("expected Fail");
        };
        assert_eq!(findings.len(), 1);
        assert!(findings[0].starts_with("wire_encode:"), "{}", findings[0]);
        assert!(findings[0].contains("exceeds threshold"));
    }

    #[test]
    fn the_floor_shields_fast_areas_from_clock_noise() {
        // Ratio blown 100×, but the median sits under the 20µs floor.
        let records = vec![record("tiny", 19_000, 0.0001)];
        assert_eq!(
            evaluate(&GateConfig::default(), &calibration(), &records),
            GateOutcome::Pass
        );
    }

    #[test]
    fn noisy_calibration_skips_loudly() {
        let noisy = Calibration {
            baseline_ns: 1_000_000,
            mad_ns: 400_000,
            reps: 15,
        };
        let records = vec![record("a", 1, 0.1)];
        let GateOutcome::Skip(reason) = evaluate(&GateConfig::default(), &noisy, &records) else {
            panic!("expected Skip");
        };
        assert!(reason.contains("too noisy"), "{reason}");
        assert!(reason.contains("0.400"), "{reason}");
    }

    #[test]
    fn strict_profile_halves_the_headroom() {
        let config = GateConfig::strict();
        assert_eq!(config.multiplier, 2.0);
        // 2 × 0.1 × 1ms = 200µs: 250µs fails strict but passes default.
        let records = vec![record("a", 250_000, 0.1)];
        assert!(matches!(
            evaluate(&config, &calibration(), &records),
            GateOutcome::Fail(_)
        ));
        assert_eq!(
            evaluate(&GateConfig::default(), &calibration(), &records),
            GateOutcome::Pass
        );
    }

    #[test]
    fn threshold_never_drops_below_the_floor() {
        let config = GateConfig::default();
        assert_eq!(config.threshold_ns(0.0, &calibration()), config.floor_ns);
        assert_eq!(
            config.threshold_ns(f64::NAN, &calibration()),
            config.floor_ns
        );
    }
}
