//! The registered bench areas: every hot path the workspace gates on.
//!
//! An [`Area`] is a named, self-contained measurement — it builds its
//! own inputs, runs a fixed amount of work per iteration, and returns
//! raw per-iteration nanoseconds for [`Summary`](crate::stats::Summary)
//! to digest. Areas carry an [`expected_ratio`](Area::expected_ratio):
//! the cost of one iteration relative to the calibration baseline,
//! measured once on an idle machine and committed. The CI gate flags an
//! area when its live ratio exceeds `multiplier × expected_ratio`, so
//! the committed constants are machine-independent by construction.

use crate::stats::Summary;
use livephase_engine::{Decision, DecisionEngine, EngineConfig};
use livephase_pmsim::{
    AnalyticModel, LinearModel, OperatingPointTable, PowerInput, PowerModel, TrainingRecord,
    TreeModel,
};
use livephase_serve::wire::{encode_into, Frame, FrameDecoder};
use livephase_telemetry::Histogram;
use livephase_tenants::{run_scenario, ScenarioSpec};
use livephase_workloads::spec;
use std::time::Instant;

/// Default timed iterations per area.
pub const DEFAULT_ITERS: usize = 30;
/// Default untimed warmup iterations per area.
pub const DEFAULT_WARMUP: usize = 3;

/// One registered hot path.
pub struct Area {
    /// Stable identifier; becomes the `BENCH_<name>.json` filename.
    pub name: &'static str,
    /// One-line description of what an iteration does.
    pub what: &'static str,
    /// Committed cost of one iteration relative to the calibration
    /// baseline, measured on an idle machine. The gate threshold is
    /// `multiplier × expected_ratio × baseline_ns`.
    pub expected_ratio: f64,
    /// Runs `warmup` untimed then `iters` timed iterations, returning
    /// per-iteration nanoseconds.
    pub run: fn(warmup: usize, iters: usize) -> Vec<u64>,
}

impl Area {
    /// Measures this area and summarizes the samples.
    #[must_use]
    pub fn measure(&self, warmup: usize, iters: usize) -> Summary {
        let ns = (self.run)(warmup, iters.max(1));
        Summary::from_ns(&ns).expect("iters >= 1 yields samples")
    }
}

/// Times `iters` invocations of `iter` after `warmup` untimed ones.
fn timed(warmup: usize, iters: usize, mut iter: impl FnMut()) -> Vec<u64> {
    for _ in 0..warmup {
        iter();
    }
    let mut ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let started = Instant::now();
        iter();
        ns.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    ns
}

fn deployed_engine() -> DecisionEngine {
    DecisionEngine::from_spec(EngineConfig::pentium_m(), "gpht:8:128")
        .expect("the deployed predictor spec is valid")
}

/// `engine_step`: 1000 single-sample steps through the decision engine
/// — the per-interval path a PMI handler would take.
fn run_engine_step(warmup: usize, iters: usize) -> Vec<u64> {
    let samples = crate::calibrate::calibration_samples(1000);
    let mut engine = deployed_engine();
    timed(warmup, iters, || {
        let mut acc = 0u32;
        for s in &samples {
            acc = acc.wrapping_add(u32::from(engine.step(s).op_point));
        }
        std::hint::black_box(acc);
    })
}

/// `engine_step_many`: one batched `step_many` over 1000 samples — the
/// serve shard's drain path.
fn run_engine_step_many(warmup: usize, iters: usize) -> Vec<u64> {
    let samples = crate::calibrate::calibration_samples(1000);
    let mut engine = deployed_engine();
    let mut decisions: Vec<Decision> = Vec::with_capacity(samples.len());
    timed(warmup, iters, || {
        decisions.clear();
        engine.step_many(&samples, &mut decisions);
        std::hint::black_box(decisions.last().map_or(0, |d| d.op_point));
    })
}

/// The 1000-frame traffic mix the wire areas encode and decode:
/// alternating samples and decisions, the steady-state protocol load.
fn wire_frames() -> Vec<Frame> {
    (0..1000u32)
        .map(|i| {
            if i % 2 == 0 {
                Frame::Sample {
                    pid: i % 16,
                    uops: 100_000_000 + u64::from(i) * 1_000,
                    mem_trans: 2_000_000 + u64::from(i) * 37,
                    tsc_delta: 180_000_000,
                }
            } else {
                Frame::Decision {
                    pid: i % 16,
                    op_point: (i % 6) as u8,
                    confidence: (i % 10_000) as u16,
                }
            }
        })
        .collect()
}

/// `wire_encode`: encode the 1000-frame mix into a reused buffer.
fn run_wire_encode(warmup: usize, iters: usize) -> Vec<u64> {
    let frames = wire_frames();
    let mut buf = Vec::with_capacity(64 * 1024);
    timed(warmup, iters, || {
        buf.clear();
        for f in &frames {
            encode_into(f, &mut buf);
        }
        std::hint::black_box(buf.len());
    })
}

/// `wire_decode`: feed the encoded 1000-frame mix through a
/// `FrameDecoder` and drain every frame.
fn run_wire_decode(warmup: usize, iters: usize) -> Vec<u64> {
    let frames = wire_frames();
    let mut bytes = Vec::with_capacity(64 * 1024);
    for f in &frames {
        encode_into(f, &mut bytes);
    }
    timed(warmup, iters, || {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        let mut n = 0usize;
        while let Ok(Some(_)) = decoder.next_frame() {
            n += 1;
        }
        std::hint::black_box(n);
    })
}

/// `telemetry_record`: 4000 varied-magnitude records into a local
/// histogram — the cost every instrumented hot path pays.
fn run_telemetry_record(warmup: usize, iters: usize) -> Vec<u64> {
    // Magnitudes spanning the bucket range so sub-bucket and bucket
    // indexing both get exercised.
    let values: Vec<u64> = (0..4000u64)
        .map(|i| (i % 40) * (1 << (i % 20)) + 1)
        .collect();
    let h = Histogram::new();
    timed(warmup, iters, || {
        for &v in &values {
            h.record(v);
        }
        std::hint::black_box(h.count());
    })
}

/// `telemetry_quantile`: merge a prefilled histogram into an
/// accumulator and read p50/p90/p99 — the scrape/render path.
fn run_telemetry_quantile(warmup: usize, iters: usize) -> Vec<u64> {
    let source = Histogram::new();
    for i in 0..10_000u64 {
        source.record((i % 50) * (1 << (i % 16)) + 1);
    }
    let acc = Histogram::new();
    timed(warmup, iters, || {
        acc.merge_from(&source);
        let p50 = acc.quantile(0.50).unwrap_or(0);
        let p90 = acc.quantile(0.90).unwrap_or(0);
        let p99 = acc.quantile(0.99).unwrap_or(0);
        std::hint::black_box(p50 + p90 + p99);
    })
}

/// `workload_gen`: synthesize a 256-interval counter trace from the
/// benchmark registry — the input side of every experiment.
fn run_workload_gen(warmup: usize, iters: usize) -> Vec<u64> {
    let mut seed = 0u64;
    timed(warmup, iters, || {
        seed = seed.wrapping_add(1);
        let trace = spec::benchmark("applu_in")
            .expect("applu_in is registered")
            .with_length(256)
            .generate(seed);
        std::hint::black_box(trace.len());
    })
}

/// `tenants_quantum`: one small multi-tenant scenario end to end —
/// arbitration, scheduling quanta, and per-tenant engines.
fn run_tenants_quantum(warmup: usize, iters: usize) -> Vec<u64> {
    let mut spec = ScenarioSpec::new(4, 2);
    spec.intervals = 8;
    timed(warmup, iters, || {
        let report = run_scenario(&spec).expect("the bundled scenario is valid");
        std::hint::black_box(report.decision_digest());
    })
}

/// Deterministic training set for the power-model area: the analytic
/// model's output over a fixed feature sweep at every operating point.
/// The learned backends fit this exactly well enough for the bench to
/// exercise their real inference paths on realistic coefficients.
fn power_training_records() -> Vec<TrainingRecord> {
    let truth = AnalyticModel::pentium_m();
    let table = OperatingPointTable::pentium_m();
    let mut out = Vec::new();
    for (_, opp) in table.iter() {
        for k in 0..8u32 {
            let cf = 0.15 + 0.1 * f64::from(k);
            let input = PowerInput::new(cf, 0.05 * (1.0 - cf), 0.5 + 1.5 * cf);
            out.push(TrainingRecord {
                opp,
                input,
                measured_w: truth.power(opp, &input),
            });
        }
    }
    out
}

/// `power_model_eval`: 1000 sweeps of all three power backends across
/// the six operating points — the estimator-table / arbiter-costing
/// inner loop. Fitting happens outside the timed region; only inference
/// is measured.
fn run_power_model_eval(warmup: usize, iters: usize) -> Vec<u64> {
    let records = power_training_records();
    let analytic = AnalyticModel::pentium_m();
    let linear = LinearModel::fit(&records).expect("the synthetic sweep is well-posed");
    let tree = TreeModel::fit(&records).expect("the synthetic sweep is well-posed");
    let table = OperatingPointTable::pentium_m();
    let inputs = [
        PowerInput::from_counters(0.002, 1.8),
        PowerInput::from_counters(0.031, 0.6),
        PowerInput::new(0.55, 0.012, 1.1),
    ];
    timed(warmup, iters, || {
        let mut acc = 0.0f64;
        for _ in 0..1000 {
            for (_, opp) in table.iter() {
                for input in &inputs {
                    acc += analytic.power(opp, input);
                    acc += linear.power(opp, input);
                    acc += tree.power(opp, input);
                }
            }
        }
        std::hint::black_box(acc);
    })
}

/// `lint_full`: one full-workspace lint pass — read, lex, parse, build
/// the call graph, and run all rules over every first-party source
/// file. Gated so lint v2's interprocedural analyses cannot silently
/// blow up CI latency.
fn run_lint_full(warmup: usize, iters: usize) -> Vec<u64> {
    let cwd = std::env::current_dir().expect("bench needs a working directory");
    let root = livephase_lint::workspace::find_workspace_root(&cwd)
        .expect("lint_full runs inside the livephase workspace");
    timed(warmup, iters, || {
        let report = livephase_lint::lint_workspace(&root)
            .expect("the workspace lint_full just scanned is readable");
        std::hint::black_box(report.files_scanned + report.findings.len());
    })
}

/// Every registered area, in report order.
///
/// `expected_ratio` values were measured with `livephase-cli bench
/// --json` on an idle machine (median of the committed trajectory under
/// `results/bench/`), then rounded up ~25% so ordinary scheduling
/// jitter does not eat into the gate multiplier.
#[must_use]
pub fn registry() -> &'static [Area] {
    &[
        Area {
            name: "engine_step",
            what: "1000 single-sample DecisionEngine::step calls",
            expected_ratio: 0.30,
            run: run_engine_step,
        },
        Area {
            name: "engine_step_many",
            what: "one DecisionEngine::step_many over 1000 samples",
            expected_ratio: 0.13,
            run: run_engine_step_many,
        },
        Area {
            name: "wire_encode",
            what: "encode 1000 sample/decision frames into a reused buffer",
            expected_ratio: 0.012,
            run: run_wire_encode,
        },
        Area {
            name: "wire_decode",
            what: "FrameDecoder over a 1000-frame buffer, drained",
            expected_ratio: 0.045,
            run: run_wire_decode,
        },
        Area {
            name: "telemetry_record",
            what: "4000 varied-magnitude Histogram::record calls",
            expected_ratio: 0.12,
            run: run_telemetry_record,
        },
        Area {
            name: "telemetry_quantile",
            what: "merge a 10k-sample histogram and read p50/p90/p99",
            expected_ratio: 0.005,
            run: run_telemetry_quantile,
        },
        Area {
            name: "workload_gen",
            what: "synthesize a 256-interval applu_in counter trace",
            expected_ratio: 0.032,
            run: run_workload_gen,
        },
        Area {
            name: "tenants_quantum",
            what: "one 4-tenant/2-core/8-interval cluster scenario",
            expected_ratio: 0.25,
            run: run_tenants_quantum,
        },
        Area {
            name: "lint_full",
            what: "full-workspace lint: lex, parse, call graph, all rules",
            expected_ratio: 110.0,
            run: run_lint_full,
        },
        Area {
            name: "power_model_eval",
            what: "1000 sweeps of analytic/linear/tree power inference over 6 opps",
            expected_ratio: 0.60,
            run: run_power_model_eval,
        },
    ]
}

/// Looks an area up by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Area> {
    registry().iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let areas = registry();
        assert!(areas.len() >= 5, "the gate needs at least five areas");
        for (i, a) in areas.iter().enumerate() {
            assert!(find(a.name).is_some());
            assert!(
                !areas[..i].iter().any(|b| b.name == a.name),
                "duplicate area name {}",
                a.name
            );
            assert!(a.expected_ratio > 0.0);
            assert!(
                a.name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "area names are snake_case: {}",
                a.name
            );
        }
        assert!(find("no_such_area").is_none());
    }

    #[test]
    fn every_area_produces_a_summary() {
        for a in registry() {
            let s = a.measure(0, 2);
            assert_eq!(s.iterations, 2, "{}", a.name);
            assert!(s.max_ns >= s.min_ns, "{}", a.name);
        }
    }
}
