//! Deterministic summary statistics over per-iteration timing samples.
//!
//! Everything here is integer math over sorted copies of the input, so
//! the same sample vector always yields the same summary — the property
//! the harness tests pin with proptest. The statistics are the robust
//! trio the whole harness is built on: the **median** (location), the
//! **p90** (tail), and the **MAD** (median absolute deviation — spread
//! that one cold-cache outlier cannot drag around the way a standard
//! deviation can).

/// Robust summary of one area's per-iteration wall-clock samples, in
/// nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of timed iterations summarized.
    pub iterations: usize,
    /// Median; even-length inputs average the two middle elements
    /// (rounding the half down, so the result stays an integer).
    pub median_ns: u64,
    /// Nearest-rank 90th percentile: the `ceil(0.9 n)`-th smallest.
    pub p90_ns: u64,
    /// Median absolute deviation from [`median_ns`](Self::median_ns).
    pub mad_ns: u64,
    /// Smallest sample.
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Sum of all samples (saturating).
    pub total_ns: u64,
}

/// Median of a **sorted** slice; even lengths average the two middle
/// elements, rounding down.
fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    let mid = n / 2;
    if n % 2 == 1 {
        sorted[mid]
    } else {
        // Average without overflow: midpoint of the two middles.
        let (a, b) = (sorted[mid - 1], sorted[mid]);
        a / 2 + b / 2 + (a % 2 + b % 2) / 2
    }
}

impl Summary {
    /// Summarizes a sample vector, or `None` when it is empty.
    #[must_use]
    pub fn from_ns(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let median_ns = median_of_sorted(&sorted);
        // Nearest-rank p90: ceil(0.9 n) as pure integer math.
        let rank = (9 * n).div_ceil(10).max(1);
        let p90_ns = sorted[rank - 1];
        let mut deviations: Vec<u64> = sorted.iter().map(|&v| v.abs_diff(median_ns)).collect();
        deviations.sort_unstable();
        let mad_ns = median_of_sorted(&deviations);
        Some(Self {
            iterations: n,
            median_ns,
            p90_ns,
            mad_ns,
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
            total_ns: sorted.iter().fold(0u64, |acc, &v| acc.saturating_add(v)),
        })
    }

    /// Spread relative to location (`mad / median`), the harness'
    /// machine-noise figure: a calibration whose samples scatter more
    /// than a sanity bound is not a machine to gate on. Zero when the
    /// median is zero.
    #[must_use]
    pub fn relative_mad(&self) -> f64 {
        if self.median_ns == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.mad_ns as f64 / self.median_ns as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_length_median_is_the_middle() {
        let s = Summary::from_ns(&[5, 1, 9]).unwrap();
        assert_eq!(s.median_ns, 5);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 9);
        assert_eq!(s.total_ns, 15);
    }

    #[test]
    fn even_length_median_averages_the_middles() {
        let s = Summary::from_ns(&[1, 3, 5, 100]).unwrap();
        assert_eq!(s.median_ns, 4);
        // Odd halves round down: (3 + 4) / 2 = 3.
        assert_eq!(Summary::from_ns(&[3, 4]).unwrap().median_ns, 3);
    }

    #[test]
    fn all_equal_inputs_have_zero_spread() {
        let s = Summary::from_ns(&[7; 10]).unwrap();
        assert_eq!(s.median_ns, 7);
        assert_eq!(s.p90_ns, 7);
        assert_eq!(s.mad_ns, 0);
        assert_eq!(s.relative_mad(), 0.0);
    }

    #[test]
    fn p90_is_nearest_rank() {
        let samples: Vec<u64> = (1..=10).collect();
        assert_eq!(Summary::from_ns(&samples).unwrap().p90_ns, 9);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(Summary::from_ns(&samples).unwrap().p90_ns, 90);
        assert_eq!(Summary::from_ns(&[42]).unwrap().p90_ns, 42);
    }

    #[test]
    fn empty_input_has_no_summary() {
        assert_eq!(Summary::from_ns(&[]), None);
    }

    #[test]
    fn mad_resists_an_outlier() {
        // One cold-cache outlier: the MAD stays put where a stddev would
        // explode.
        let s = Summary::from_ns(&[100, 101, 99, 100, 100_000]).unwrap();
        assert_eq!(s.median_ns, 100);
        assert_eq!(s.mad_ns, 1);
    }
}
