//! Machine calibration: the one wall-clock measurement everything else
//! is a ratio of.
//!
//! Hardcoded millisecond thresholds make a perf gate a liar on any
//! machine other than the one that wrote them. Instead the harness
//! measures a **bundled calibration workload** — a fixed
//! `DecisionEngine::step_many` run over a deterministic interval stream,
//! the exact pipeline the paper deploys in its PMI handler — once per
//! invocation, and every bench area reports its cost as a *ratio to
//! that baseline*. A fast machine shrinks both numerator and
//! denominator; the ratio survives the trip from a dev laptop to a
//! loaded CI runner.
//!
//! The measurement is cached in a process-wide `OnceLock`, so a run
//! over many areas calibrates exactly once.

use crate::stats::Summary;
use livephase_engine::{Decision, DecisionEngine, EngineConfig, Sample};
use livephase_workloads::{counter_samples, spec};
use std::sync::OnceLock;
use std::time::Instant;

/// Samples in the calibration batch. Large enough that one rep takes
/// hundreds of microseconds (clock granularity disappears), small
/// enough that warmup + reps stays well under the ~200 ms budget the
/// whole calibration is allowed.
pub const CALIBRATION_BATCH: usize = 8_192;
/// Timed repetitions of the calibration batch.
pub const CALIBRATION_REPS: usize = 15;
/// Untimed warmup repetitions before the timed ones.
pub const CALIBRATION_WARMUP: usize = 3;

/// The calibration result: the machine's baseline cost for the bundled
/// workload, plus how noisy the measurement itself was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Median wall-clock nanoseconds for one calibration rep.
    pub baseline_ns: u64,
    /// MAD of the reps — the gate's variance sanity check reads
    /// `mad / median` from here via [`variance`](Self::variance).
    pub mad_ns: u64,
    /// Number of timed reps behind the numbers.
    pub reps: usize,
}

impl Calibration {
    /// Relative measurement noise (`mad / median`). Machines where this
    /// exceeds the gate's sanity bound get a loud skip instead of a
    /// meaningless verdict.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.baseline_ns == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.mad_ns as f64 / self.baseline_ns as f64
            }
        }
    }
}

/// The deterministic sample batch the calibration workload steps
/// through: a real workload trace round-robined across 16 pids, the way
/// a serve shard's drained queue interleaves sessions. Also reused by
/// the engine bench areas so their ratios measure code, not workload
/// differences.
#[must_use]
pub fn calibration_samples(batch: usize) -> Vec<Sample> {
    const PIDS: u32 = 16;
    let trace = spec::benchmark("applu_in")
        .expect("applu_in is registered")
        .with_length(batch / PIDS as usize + 1)
        .generate(1);
    let per_pid: Vec<(u64, u64)> = counter_samples(&trace)
        .map(|s| (s.uops, s.mem_transactions))
        .collect();
    let mut samples = Vec::with_capacity(batch);
    'outer: for &(uops, mem_transactions) in &per_pid {
        for pid in 0..PIDS {
            samples.push(Sample {
                pid,
                uops,
                mem_transactions,
            });
            if samples.len() == batch {
                break 'outer;
            }
        }
    }
    samples
}

/// A fresh engine configured the way every deployment site configures
/// it.
fn engine() -> DecisionEngine {
    DecisionEngine::from_spec(EngineConfig::pentium_m(), "gpht:8:128")
        .expect("the deployed predictor spec is valid")
}

/// Runs the calibration workload now, uncached. Exposed for tests and
/// for the variance measurement; production callers want
/// [`calibration`].
#[must_use]
pub fn measure_calibration() -> Calibration {
    let samples = calibration_samples(CALIBRATION_BATCH);
    let mut engine = engine();
    let mut decisions: Vec<Decision> = Vec::with_capacity(samples.len());
    let mut rep = || {
        decisions.clear();
        engine.step_many(&samples, &mut decisions);
        std::hint::black_box(decisions.last().map_or(0, |d| d.op_point));
    };
    for _ in 0..CALIBRATION_WARMUP {
        rep();
    }
    let mut ns = Vec::with_capacity(CALIBRATION_REPS);
    for _ in 0..CALIBRATION_REPS {
        let started = Instant::now();
        rep();
        ns.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let summary = Summary::from_ns(&ns).expect("CALIBRATION_REPS > 0");
    Calibration {
        baseline_ns: summary.median_ns.max(1),
        mad_ns: summary.mad_ns,
        reps: summary.iterations,
    }
}

static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

/// The process-wide calibration, measured on first use and cached: many
/// areas, one baseline.
pub fn calibration() -> &'static Calibration {
    CALIBRATION.get_or_init(|| {
        livephase_telemetry::timed_span!("bench::calibrate", "calibration", {
            measure_calibration()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_samples_are_deterministic_and_sized() {
        let a = calibration_samples(256);
        let b = calibration_samples(256);
        assert_eq!(a.len(), 256);
        assert_eq!(a, b);
        assert!(a.iter().any(|s| s.pid != a[0].pid), "pids interleave");
    }

    #[test]
    fn calibration_is_positive_and_cached() {
        let first = calibration();
        assert!(first.baseline_ns > 0);
        assert_eq!(first.reps, CALIBRATION_REPS);
        let second = calibration();
        assert!(
            std::ptr::eq(first, second),
            "OnceLock hands out the same measurement"
        );
    }
}
