//! `--profile`: turn the `timed_span!` telemetry into a hot-path report.
//!
//! Every `timed_span!` block in the workspace feeds the
//! `span_elapsed_us` histogram family unconditionally, so after a bench
//! run the global registry already holds a per-span cost breakdown.
//! This module walks every histogram in a registry (spans and latency
//! series alike) and renders an aligned table sorted by total time —
//! the first place to look when a gate finding says "slower" but not
//! "where".

use livephase_telemetry::Registry;

/// One histogram series, flattened for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Metric name plus rendered labels, e.g.
    /// `span_elapsed_us{span="drain",target="serve::conn"}`.
    pub series: String,
    /// Recorded observations.
    pub count: u64,
    /// Sum of recorded values (the histogram's native unit).
    pub total: u64,
    /// Median observation.
    pub p50: u64,
    /// 99th-percentile observation.
    pub p99: u64,
    /// Values that exceeded the recordable range.
    pub overflow: u64,
}

/// Collects every non-empty histogram series in `registry`, sorted by
/// descending total (ties break on the series name, so output is
/// deterministic).
#[must_use]
pub fn collect(registry: &Registry) -> Vec<ProfileRow> {
    let mut rows = Vec::new();
    registry.visit_histograms(|name, labels, h| {
        let count = h.count();
        if count == 0 {
            return;
        }
        let series = if labels.is_empty() {
            name.to_owned()
        } else {
            let rendered: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{name}{{{}}}", rendered.join(","))
        };
        rows.push(ProfileRow {
            series,
            count,
            total: h.sum(),
            p50: h.quantile(0.50).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
            overflow: h.overflow(),
        });
    });
    rows.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.series.cmp(&b.series)));
    rows
}

/// Renders rows as an aligned text table.
#[must_use]
pub fn render(rows: &[ProfileRow]) -> String {
    if rows.is_empty() {
        return "no histogram series recorded; nothing to profile\n".to_owned();
    }
    let series_w = rows
        .iter()
        .map(|r| r.series.len())
        .chain(std::iter::once("series".len()))
        .max()
        .unwrap_or(6);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<series_w$}  {:>10}  {:>14}  {:>10}  {:>10}  {:>8}\n",
        "series", "count", "total", "p50", "p99", "overflow"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<series_w$}  {:>10}  {:>14}  {:>10}  {:>10}  {:>8}\n",
            r.series, r.count, r.total, r.p50, r.p99, r.overflow
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_skips_empty_series_and_sorts_by_total() {
        let r = Registry::new();
        r.histogram("a_us", "help", &[("k", "v")]); // empty → skipped
        r.histogram("b_us", "help", &[]).record_n(10, 3);
        let big = r.histogram("c_us", "help", &[("span", "hot")]);
        big.record(1000);
        let rows = collect(&r);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].series, "c_us{span=\"hot\"}");
        assert_eq!(rows[0].total, 1000);
        assert_eq!(rows[1].series, "b_us");
        assert_eq!(rows[1].count, 3);
    }

    #[test]
    fn render_aligns_and_handles_empty() {
        assert!(render(&[]).contains("nothing to profile"));
        let r = Registry::new();
        r.histogram("x_us", "help", &[]).record(7);
        let text = render(&collect(&r));
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("series"));
        assert!(lines.next().unwrap().starts_with("x_us"));
    }

    #[test]
    fn overflow_shows_up_in_the_row() {
        let r = Registry::new();
        let h = r.histogram("y_us", "help", &[]);
        h.record_saturating(u128::from(u64::MAX) + 1);
        let rows = collect(&r);
        assert_eq!(rows[0].overflow, 1);
    }
}
