//! # livephase-bench
//!
//! The Criterion benchmark harness for the workspace. The benches are the
//! performance-measurement counterpart of the experiment drivers:
//!
//! * `predictors` — per-sample cost of every phase predictor (the code
//!   that runs inside the paper's PMI handler, where "no visible
//!   overheads" is a hard requirement), including the GPHT's sensitivity
//!   to PHT size (the performance side of Figure 5);
//! * `platform` — simulated-CPU interval throughput, timing/power model
//!   evaluation and DVFS switching;
//! * `daq` — sense-network math and 40 µs-sampling throughput;
//! * `governor` — full management-loop cost per sampling interval for
//!   each policy of the paper (baseline / reactive / GPHT);
//! * `figures` — end-to-end regeneration cost of every table and figure
//!   at reduced scale (one bench per paper artifact).
//!
//! Run with `cargo bench --workspace`.

/// A deterministic phase-id sequence used by several benches: a rapidly
/// varying applu-like pattern.
#[must_use]
pub fn synthetic_phase_pattern(len: usize) -> Vec<u8> {
    [1u8, 1, 1, 3, 5, 5, 3, 1, 1, 2, 3, 3, 2, 1]
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn pattern_has_requested_length() {
        assert_eq!(super::synthetic_phase_pattern(100).len(), 100);
    }
}
