//! # livephase-bench
//!
//! Two harnesses live here.
//!
//! **The calibrated gate harness** (this library) is what
//! `livephase-cli bench` and ci.sh run: a zero-dependency, in-process
//! benchmark pipeline. [`calibrate`] measures a bundled calibration
//! workload — a fixed `DecisionEngine::step_many` run over a
//! deterministic interval stream — once per invocation (cached in a
//! `OnceLock`); [`areas`] registers every hot path worth gating
//! (engine stepping, wire framing, histogram math, workload
//! generation, the tenants scheduler) and reports each as a **ratio to
//! that baseline**, so thresholds survive the trip between machines of
//! different speeds; [`stats`] supplies the robust median/p90/MAD
//! summaries; [`record`] emits the committed `BENCH_<area>.json`
//! trajectory; [`gate`] turns records into a pass/skip/fail verdict;
//! and [`profile`] renders the `timed_span!` telemetry as a hot-path
//! table.
//!
//! **The Criterion benches** under `benches/` remain the exploratory,
//! statistics-heavy harness for development (`cargo bench
//! --workspace`); nothing on the CI gate path depends on them:
//!
//! * `predictors` — per-sample cost of every phase predictor (the code
//!   that runs inside the paper's PMI handler, where "no visible
//!   overheads" is a hard requirement), including the GPHT's sensitivity
//!   to PHT size (the performance side of Figure 5);
//! * `platform` — simulated-CPU interval throughput, timing/power model
//!   evaluation and DVFS switching;
//! * `daq` — sense-network math and 40 µs-sampling throughput;
//! * `governor` — full management-loop cost per sampling interval for
//!   each policy of the paper (baseline / reactive / GPHT);
//! * `figures` — end-to-end regeneration cost of every table and figure
//!   at reduced scale (one bench per paper artifact);
//! * `serve`, `engine`, `telemetry` — serving-stack micro-benches.

pub mod areas;
pub mod calibrate;
pub mod compare;
pub mod gate;
pub mod profile;
pub mod record;
pub mod stats;

pub use areas::{find, registry, Area, DEFAULT_ITERS, DEFAULT_WARMUP};
pub use calibrate::{calibration, measure_calibration, Calibration};
pub use compare::{compare_dirs, AreaDelta, CompareReport};
pub use gate::{evaluate, GateConfig, GateOutcome};
pub use profile::{collect, render, ProfileRow};
pub use record::{git_rev, BenchRecord, Machine, SCHEMA};
pub use stats::Summary;

/// A deterministic phase-id sequence used by several benches: a rapidly
/// varying applu-like pattern.
#[must_use]
pub fn synthetic_phase_pattern(len: usize) -> Vec<u8> {
    [1u8, 1, 1, 3, 5, 5, 3, 1, 1, 2, 3, 3, 2, 1]
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn pattern_has_requested_length() {
        assert_eq!(super::synthetic_phase_pattern(100).len(), 100);
    }
}
