//! `BENCH_<area>.json` records: the committed perf trajectory.
//!
//! One record per area per run, hand-rolled JSON (the workspace is
//! zero-dependency — no serde on the gate path). The schema is pinned
//! by a golden test in `tests/harness.rs`: downstream tooling diffs
//! these files across commits, so field order and float formatting are
//! part of the contract. Wall-clock timestamps are **passed in** by the
//! caller — nothing in the measurement path reads the clock-of-day, so
//! records stay reproducible modulo the machine.

use crate::calibrate::Calibration;
use crate::stats::Summary;

/// Schema identifier embedded in every record.
pub const SCHEMA: &str = "livephase-bench/v1";

/// Where the record was measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Hostname, or `"unknown"`.
    pub host: String,
    /// CPU model string, or `"unknown"`.
    pub cpu: String,
    /// Logical cores visible to the process.
    pub cores: usize,
}

impl Machine {
    /// Fingerprints the current machine from procfs (best-effort; every
    /// field degrades to a placeholder off-Linux).
    #[must_use]
    pub fn detect() -> Self {
        let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_owned())
            .ok()
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split_once(':'))
                    .map(|(_, v)| v.trim().to_owned())
            })
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self { host, cpu, cores }
    }
}

/// One area's measurement, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Area name (`BENCH_<area>.json`).
    pub area: String,
    /// The area's per-iteration summary.
    pub summary: Summary,
    /// Untimed warmup iterations that preceded the summary.
    pub warmup: usize,
    /// The calibration this run's ratio is relative to.
    pub calibration: Calibration,
    /// The committed expected ratio for the area.
    pub expected_ratio: f64,
    /// Machine fingerprint.
    pub machine: Machine,
    /// Git revision the record was measured at (short hash or
    /// `"unknown"`), passed in by the caller.
    pub git_rev: String,
    /// Wall-clock milliseconds since the Unix epoch, passed in by the
    /// caller — the measurement path never reads the clock-of-day.
    pub unix_ms: u64,
}

impl BenchRecord {
    /// Measured cost relative to the calibration baseline — the number
    /// the gate thresholds.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.summary.median_ns as f64 / self.calibration.baseline_ns.max(1) as f64
        }
    }

    /// The record's on-disk filename.
    #[must_use]
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.area)
    }

    /// Serializes the record. Field order and `{:.6}` float formatting
    /// are pinned by the schema golden test.
    #[must_use]
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let c = &self.calibration;
        let mut out = String::with_capacity(640);
        out.push_str("{\n");
        push_str_field(&mut out, "schema", SCHEMA, true);
        push_str_field(&mut out, "area", &self.area, true);
        push_u64_field(&mut out, "iterations", s.iterations as u64, true);
        push_u64_field(&mut out, "warmup", self.warmup as u64, true);
        push_u64_field(&mut out, "median_ns", s.median_ns, true);
        push_u64_field(&mut out, "p90_ns", s.p90_ns, true);
        push_u64_field(&mut out, "mad_ns", s.mad_ns, true);
        push_u64_field(&mut out, "min_ns", s.min_ns, true);
        push_u64_field(&mut out, "max_ns", s.max_ns, true);
        push_u64_field(&mut out, "baseline_ns", c.baseline_ns, true);
        push_u64_field(&mut out, "baseline_mad_ns", c.mad_ns, true);
        push_f64_field(&mut out, "ratio", self.ratio(), true);
        push_f64_field(&mut out, "expected_ratio", self.expected_ratio, true);
        out.push_str("  \"machine\": {\n");
        out.push_str(&format!(
            "    \"host\": \"{}\",\n",
            escape(&self.machine.host)
        ));
        out.push_str(&format!(
            "    \"cpu\": \"{}\",\n",
            escape(&self.machine.cpu)
        ));
        out.push_str(&format!("    \"cores\": {}\n", self.machine.cores));
        out.push_str("  },\n");
        push_str_field(&mut out, "git_rev", &self.git_rev, true);
        push_u64_field(&mut out, "unix_ms", self.unix_ms, false);
        out.push_str("}\n");
        out
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str, comma: bool) {
    out.push_str(&format!(
        "  \"{key}\": \"{}\"{}\n",
        escape(value),
        if comma { "," } else { "" }
    ));
}

fn push_u64_field(out: &mut String, key: &str, value: u64, comma: bool) {
    out.push_str(&format!(
        "  \"{key}\": {value}{}\n",
        if comma { "," } else { "" }
    ));
}

fn push_f64_field(out: &mut String, key: &str, value: f64, comma: bool) {
    out.push_str(&format!(
        "  \"{key}\": {value:.6}{}\n",
        if comma { "," } else { "" }
    ));
}

/// Minimal JSON string escaping: the fingerprint strings are the only
/// free-form values and they never legitimately contain control bytes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reads the short git revision of `repo_dir`, or `"unknown"`. Plumbed
/// through the CLI so the bench library itself never shells out.
#[must_use]
pub fn git_rev(repo_dir: &std::path::Path) -> String {
    let head = repo_dir.join(".git/HEAD");
    let Ok(head) = std::fs::read_to_string(head) else {
        return "unknown".to_owned();
    };
    let head = head.trim();
    let full = if let Some(reference) = head.strip_prefix("ref: ") {
        std::fs::read_to_string(repo_dir.join(".git").join(reference))
            .map(|s| s.trim().to_owned())
            .unwrap_or_default()
    } else {
        head.to_owned()
    };
    if full.len() >= 12 && full.chars().all(|c| c.is_ascii_hexdigit()) {
        full[..12].to_owned()
    } else {
        "unknown".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            area: "wire_encode".to_owned(),
            summary: Summary::from_ns(&[100, 110, 120, 130, 140]).unwrap(),
            warmup: 3,
            calibration: Calibration {
                baseline_ns: 1000,
                mad_ns: 10,
                reps: 15,
            },
            expected_ratio: 0.06,
            machine: Machine {
                host: "ci-runner".to_owned(),
                cpu: "Example CPU".to_owned(),
                cores: 8,
            },
            git_rev: "abcdef123456".to_owned(),
            unix_ms: 1_754_000_000_000,
        }
    }

    #[test]
    fn ratio_is_median_over_baseline() {
        let r = record();
        assert!((r.ratio() - 0.12).abs() < 1e-9);
        assert_eq!(r.filename(), "BENCH_wire_encode.json");
    }

    #[test]
    fn json_carries_every_field_once() {
        let json = record().to_json();
        for key in [
            "schema",
            "area",
            "iterations",
            "warmup",
            "median_ns",
            "p90_ns",
            "mad_ns",
            "min_ns",
            "max_ns",
            "baseline_ns",
            "baseline_mad_ns",
            "ratio",
            "expected_ratio",
            "machine",
            "host",
            "cpu",
            "cores",
            "git_rev",
            "unix_ms",
        ] {
            assert_eq!(
                json.matches(&format!("\"{key}\":")).count(),
                1,
                "field {key} appears exactly once"
            );
        }
        assert!(json.contains("\"schema\": \"livephase-bench/v1\""));
        assert!(json.contains("\"ratio\": 0.120000"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn escape_handles_quotes_and_control_bytes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("x\u{1}y"), "x\\u0001y");
    }

    #[test]
    fn machine_detect_never_panics() {
        let m = Machine::detect();
        assert!(m.cores >= 1);
        assert!(!m.host.is_empty());
        assert!(!m.cpu.is_empty());
    }
}
