//! `bench --compare <dir-a> <dir-b>`: trend diff over two committed
//! `BENCH_<area>.json` snapshot directories.
//!
//! CI archives each run's records under a dated directory (see
//! `results/bench/`). This module diffs two such snapshots area by
//! area on the **baseline-relative ratio** — the machine-independent
//! number the gate thresholds — so a perf PR can show its before/after
//! table without re-running anything, and a drift between two CI
//! archives is visible as a ratio delta rather than raw nanoseconds
//! that mean nothing across machines. Parsing is hand-rolled over the
//! schema `record.rs` pins with a golden test; no serde on this path.

use std::collections::BTreeMap;
use std::path::Path;

/// A ratio increase beyond this fraction of the older snapshot flags
/// the area as a regression. Matches the spirit of the live gate's
/// multiplier but is deliberately tighter: comparing two committed
/// snapshots already cancels machine noise through the calibration
/// baseline, so a 15 % ratio drift is signal.
pub const REGRESSION_FRACTION: f64 = 0.15;

/// One area's before/after ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaDelta {
    /// Area name shared by both records.
    pub area: String,
    /// Baseline-relative ratio in the older (first) snapshot.
    pub ratio_a: f64,
    /// Baseline-relative ratio in the newer (second) snapshot.
    pub ratio_b: f64,
    /// Raw median nanoseconds in the older snapshot (context only).
    pub median_a_ns: u64,
    /// Raw median nanoseconds in the newer snapshot (context only).
    pub median_b_ns: u64,
}

impl AreaDelta {
    /// Ratio change from A to B, in percent (positive = slower).
    #[must_use]
    pub fn delta_pct(&self) -> f64 {
        if self.ratio_a <= 0.0 {
            return 0.0;
        }
        (self.ratio_b - self.ratio_a) / self.ratio_a * 100.0
    }

    /// Whether the newer snapshot regressed past the flagging threshold.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.ratio_b > self.ratio_a * (1.0 + REGRESSION_FRACTION)
    }
}

/// The full diff between two snapshot directories.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// The older snapshot's path, as given.
    pub dir_a: String,
    /// The newer snapshot's path, as given.
    pub dir_b: String,
    /// Areas present in both snapshots, sorted by name.
    pub rows: Vec<AreaDelta>,
    /// Areas only the older snapshot has (dropped since).
    pub only_a: Vec<String>,
    /// Areas only the newer snapshot has (added since).
    pub only_b: Vec<String>,
}

impl CompareReport {
    /// Whether any shared area regressed past [`REGRESSION_FRACTION`].
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(AreaDelta::regressed)
    }

    /// Renders the per-area delta table plus added/dropped notes.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "bench compare: {} -> {}", self.dir_a, self.dir_b);
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>12} {:>12} {:>9}  flag",
            "area", "ratio A", "ratio B", "median A ns", "median B ns", "delta"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<18} {:>10.3} {:>10.3} {:>12} {:>12} {:>+8.1}%  {}",
                r.area,
                r.ratio_a,
                r.ratio_b,
                r.median_a_ns,
                r.median_b_ns,
                r.delta_pct(),
                if r.regressed() { "REGRESSION" } else { "" }
            );
        }
        for a in &self.only_a {
            let _ = writeln!(out, "dropped since {}: {a}", self.dir_a);
        }
        for b in &self.only_b {
            let _ = writeln!(out, "added in {}: {b}", self.dir_b);
        }
        let regressions = self.rows.iter().filter(|r| r.regressed()).count();
        if regressions == 0 {
            let _ = writeln!(
                out,
                "no regressions ({} shared areas within +{:.0}% ratio drift)",
                self.rows.len(),
                REGRESSION_FRACTION * 100.0
            );
        } else {
            let _ = writeln!(
                out,
                "{regressions} regression(s) past +{:.0}% ratio drift",
                REGRESSION_FRACTION * 100.0
            );
        }
        out
    }
}

/// One parsed record: the three fields the diff needs.
#[derive(Debug, Clone, PartialEq)]
struct Parsed {
    ratio: f64,
    median_ns: u64,
}

/// Diffs every `BENCH_*.json` under `dir_a` against `dir_b`.
///
/// # Errors
///
/// Returns a message when either directory is unreadable, contains no
/// records, or a record fails to parse.
pub fn compare_dirs(dir_a: &str, dir_b: &str) -> Result<CompareReport, String> {
    let a = load_dir(dir_a)?;
    let b = load_dir(dir_b)?;
    let mut rows = Vec::new();
    let mut only_a = Vec::new();
    let mut only_b: Vec<String> = b.keys().filter(|k| !a.contains_key(*k)).cloned().collect();
    only_b.sort();
    for (area, ra) in &a {
        match b.get(area) {
            Some(rb) => rows.push(AreaDelta {
                area: area.clone(),
                ratio_a: ra.ratio,
                ratio_b: rb.ratio,
                median_a_ns: ra.median_ns,
                median_b_ns: rb.median_ns,
            }),
            None => only_a.push(area.clone()),
        }
    }
    Ok(CompareReport {
        dir_a: dir_a.to_owned(),
        dir_b: dir_b.to_owned(),
        rows,
        only_a,
        only_b,
    })
}

/// Loads every record in one snapshot directory, keyed by area.
fn load_dir(dir: &str) -> Result<BTreeMap<String, Parsed>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read directory {dir}: {e}"))?;
    let mut out = BTreeMap::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {dir}: {e}"))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let (area, parsed) = load_record(&path)?;
        out.insert(area, parsed);
    }
    if out.is_empty() {
        return Err(format!("no BENCH_*.json records under {dir}"));
    }
    Ok(out)
}

/// Extracts (area, ratio, median_ns) from one record. The schema is
/// line-oriented (`  "key": value,`), pinned by the record golden test,
/// so a trimmed line-by-line scan is exact — `"ratio"` never collides
/// with `"expected_ratio"` because keys are matched whole.
fn load_record(path: &Path) -> Result<(String, Parsed), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut area = None;
    let mut ratio = None;
    let mut median_ns = None;
    for line in text.lines() {
        let Some((key, value)) = line.trim().split_once(':') else {
            continue;
        };
        let value = value.trim().trim_end_matches(',');
        match key.trim() {
            "\"area\"" => area = Some(value.trim_matches('"').to_owned()),
            "\"ratio\"" => ratio = value.parse::<f64>().ok(),
            "\"median_ns\"" => median_ns = value.parse::<u64>().ok(),
            _ => {}
        }
    }
    match (area, ratio, median_ns) {
        (Some(a), Some(r), Some(m)) => Ok((
            a,
            Parsed {
                ratio: r,
                median_ns: m,
            },
        )),
        _ => Err(format!(
            "{}: missing area/ratio/median_ns fields",
            path.display()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_record(dir: &Path, area: &str, ratio: f64, median_ns: u64) {
        let body = format!(
            "{{\n  \"schema\": \"livephase-bench/v1\",\n  \"area\": \"{area}\",\n  \
             \"median_ns\": {median_ns},\n  \"ratio\": {ratio:.6},\n  \
             \"expected_ratio\": 9.999999\n}}\n"
        );
        std::fs::write(dir.join(format!("BENCH_{area}.json")), body).unwrap();
    }

    fn temp_dirs(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let base = std::env::temp_dir().join(format!("livephase_bench_compare_{tag}"));
        let a = base.join("a");
        let b = base.join("b");
        std::fs::create_dir_all(&a).unwrap();
        std::fs::create_dir_all(&b).unwrap();
        (a, b)
    }

    #[test]
    fn diffs_shared_areas_and_flags_regressions() {
        let (a, b) = temp_dirs("flags");
        write_record(&a, "engine_step", 0.30, 300_000);
        write_record(&b, "engine_step", 0.40, 400_000);
        write_record(&a, "wire_encode", 0.012, 12_000);
        write_record(&b, "wire_encode", 0.011, 11_000);
        write_record(&a, "dropped_area", 0.5, 1);
        write_record(&b, "added_area", 0.5, 1);
        let report = compare_dirs(a.to_str().unwrap(), b.to_str().unwrap()).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(report.has_regressions());
        let engine = report
            .rows
            .iter()
            .find(|r| r.area == "engine_step")
            .unwrap();
        assert!(engine.regressed());
        assert!((engine.delta_pct() - 33.333).abs() < 0.01);
        let wire = report
            .rows
            .iter()
            .find(|r| r.area == "wire_encode")
            .unwrap();
        assert!(!wire.regressed());
        assert_eq!(report.only_a, vec!["dropped_area".to_owned()]);
        assert_eq!(report.only_b, vec!["added_area".to_owned()]);
        let rendered = report.render();
        assert!(rendered.contains("REGRESSION"), "{rendered}");
        assert!(rendered.contains("added in"), "{rendered}");
        std::fs::remove_dir_all(a.parent().unwrap()).ok();
    }

    #[test]
    fn clean_diff_reports_no_regressions() {
        let (a, b) = temp_dirs("clean");
        write_record(&a, "engine_step", 0.30, 300_000);
        write_record(&b, "engine_step", 0.31, 310_000);
        let report = compare_dirs(a.to_str().unwrap(), b.to_str().unwrap()).unwrap();
        assert!(!report.has_regressions());
        assert!(report.render().contains("no regressions"));
        std::fs::remove_dir_all(a.parent().unwrap()).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        let err = compare_dirs("/nonexistent_livephase_a", "/nonexistent_livephase_b").unwrap_err();
        assert!(err.contains("cannot read directory"), "{err}");
    }

    #[test]
    fn committed_snapshots_diff_cleanly() {
        // The repo commits real snapshot directories; when running from
        // the workspace they must parse end to end.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench");
        let pre = root.join("2026-08-07-pre-opt");
        let post = root.join("2026-08-07-post-opt");
        if !(pre.is_dir() && post.is_dir()) {
            return; // packaged builds may omit results/
        }
        let report = compare_dirs(pre.to_str().unwrap(), post.to_str().unwrap()).unwrap();
        assert!(report.rows.len() >= 5, "{report:?}");
    }
}
