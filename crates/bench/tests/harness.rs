//! Integration tests for the calibrated bench harness: property tests
//! pinning the summary statistics, a golden test pinning the
//! `BENCH_<area>.json` schema byte-for-byte, and gate behavior over
//! synthetic calibrations.

use livephase_bench::{
    evaluate, BenchRecord, Calibration, GateConfig, GateOutcome, Machine, Summary,
};
use proptest::collection;
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    collection::vec(
        prop_oneof![0u64..1_000, 1_000u64..10_000_000, Just(u64::MAX)],
        1usize..64,
    )
}

proptest! {
    /// Summaries are a pure function of the multiset of samples: any
    /// reordering yields the identical summary.
    #[test]
    fn summary_is_order_independent(samples in arb_samples()) {
        let forward = Summary::from_ns(&samples).unwrap();
        let mut reversed = samples.clone();
        reversed.reverse();
        prop_assert_eq!(forward, Summary::from_ns(&reversed).unwrap());
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(forward, Summary::from_ns(&sorted).unwrap());
    }

    /// The robust statistics sit inside the sample range, the p90
    /// dominates the median, and the extremes are the true extremes.
    #[test]
    fn summary_statistics_are_ordered_and_bounded(samples in arb_samples()) {
        let s = Summary::from_ns(&samples).unwrap();
        prop_assert_eq!(s.iterations, samples.len());
        prop_assert_eq!(s.min_ns, *samples.iter().min().unwrap());
        prop_assert_eq!(s.max_ns, *samples.iter().max().unwrap());
        prop_assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        prop_assert!(s.median_ns <= s.p90_ns && s.p90_ns <= s.max_ns);
        // MAD is a deviation: it cannot exceed the full range.
        prop_assert!(s.mad_ns <= s.max_ns.saturating_sub(s.min_ns).max(1));
    }

    /// Nearest-rank p90: at least 90% of samples sit at or below it.
    #[test]
    fn p90_covers_ninety_percent(samples in arb_samples()) {
        let s = Summary::from_ns(&samples).unwrap();
        let at_or_below = samples.iter().filter(|&&v| v <= s.p90_ns).count();
        prop_assert!(at_or_below * 10 >= samples.len() * 9);
    }

    /// All-equal inputs collapse every statistic onto the value.
    #[test]
    fn constant_streams_have_zero_spread(v in 0u64..=u64::MAX, n in 1usize..40) {
        let s = Summary::from_ns(&vec![v; n]).unwrap();
        prop_assert_eq!(s.median_ns, v);
        prop_assert_eq!(s.p90_ns, v);
        prop_assert_eq!(s.mad_ns, 0);
    }
}

fn golden_record() -> BenchRecord {
    BenchRecord {
        area: "wire_encode".to_owned(),
        summary: Summary::from_ns(&[90, 100, 100, 110, 130]).unwrap(),
        warmup: 3,
        calibration: Calibration {
            baseline_ns: 1_000,
            mad_ns: 25,
            reps: 15,
        },
        expected_ratio: 0.06,
        machine: Machine {
            host: "ci-runner".to_owned(),
            cpu: "Example CPU @ 2.0GHz".to_owned(),
            cores: 8,
        },
        git_rev: "abcdef123456".to_owned(),
        unix_ms: 1_754_000_000_000,
    }
}

/// The committed perf trajectory is diffed across commits by schema;
/// any field rename, reorder, or float-formatting change must update
/// this golden deliberately.
#[test]
fn bench_record_schema_is_pinned() {
    let expected = r#"{
  "schema": "livephase-bench/v1",
  "area": "wire_encode",
  "iterations": 5,
  "warmup": 3,
  "median_ns": 100,
  "p90_ns": 130,
  "mad_ns": 10,
  "min_ns": 90,
  "max_ns": 130,
  "baseline_ns": 1000,
  "baseline_mad_ns": 25,
  "ratio": 0.100000,
  "expected_ratio": 0.060000,
  "machine": {
    "host": "ci-runner",
    "cpu": "Example CPU @ 2.0GHz",
    "cores": 8
  },
  "git_rev": "abcdef123456",
  "unix_ms": 1754000000000
}
"#;
    assert_eq!(golden_record().to_json(), expected);
}

/// End to end over real measurements: a real calibration plus a real
/// area measurement gates clean under the default config (the committed
/// expected ratios carry 5x headroom), and the emitted record parses as
/// the pinned schema.
#[test]
fn live_measurement_passes_the_default_gate_or_skips() {
    let calibration = *livephase_bench::calibration();
    let area = livephase_bench::find("wire_encode").expect("registered");
    let summary = area.measure(1, 5);
    let record = BenchRecord {
        area: area.name.to_owned(),
        summary,
        warmup: 1,
        calibration,
        expected_ratio: area.expected_ratio,
        machine: Machine::detect(),
        git_rev: "test".to_owned(),
        unix_ms: 0,
    };
    let json = record.to_json();
    assert!(json.contains("\"schema\": \"livephase-bench/v1\""));
    assert!(json.contains("\"area\": \"wire_encode\""));
    match evaluate(&GateConfig::default(), &calibration, &[record]) {
        GateOutcome::Pass | GateOutcome::Skip(_) => {}
        GateOutcome::Fail(findings) => {
            panic!("a freshly measured area must not fail its own committed ratio: {findings:?}")
        }
    }
}

/// The acceptance scenario: a synthetic 10x regression on one area
/// fails the gate with the area named, while the untouched sibling
/// record passes — on any machine, because thresholds are ratios.
#[test]
fn injected_ten_x_slowdown_fails_on_any_machine() {
    // Baselines spanning fast and slow machines; all comfortably above
    // the absolute floor, which shields only sub-floor medians (its own
    // unit test in gate.rs).
    for baseline_ns in [1_000_000u64, 80_000_000] {
        let calibration = Calibration {
            baseline_ns,
            mad_ns: baseline_ns / 100,
            reps: 15,
        };
        let honest_ns = (baseline_ns as f64 * 0.1) as u64;
        let make = |area: &str, median_ns: u64| BenchRecord {
            area: area.to_owned(),
            summary: Summary::from_ns(&[median_ns]).unwrap(),
            warmup: 0,
            calibration,
            expected_ratio: 0.1,
            machine: Machine {
                host: "x".to_owned(),
                cpu: "x".to_owned(),
                cores: 1,
            },
            git_rev: "x".to_owned(),
            unix_ms: 0,
        };
        let records = vec![
            make("healthy", honest_ns),
            make("regressed", honest_ns.saturating_mul(10)),
        ];
        let GateOutcome::Fail(findings) = evaluate(&GateConfig::default(), &calibration, &records)
        else {
            panic!("10x over a 5x threshold must fail (baseline {baseline_ns})");
        };
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].starts_with("regressed:"), "{findings:?}");
    }
}
