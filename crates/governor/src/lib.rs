//! # livephase-governor
//!
//! The dynamic power-management side of the MICRO 2006 paper: the PMI
//! handler flow of Figure 8, driving DVFS from live phase predictions.
//!
//! * [`table`] — the phase → DVFS look-up table (the paper's Table 2),
//!   re-exported from `livephase-engine`, where the shared decision
//!   pipeline lives;
//! * [`policy`] — the management policies compared in Section 6:
//!   [`policy::Baseline`] (unmanaged, always full speed),
//!   [`policy::Reactive`] (respond to the *last observed* phase —
//!   the prior-work approach) and [`policy::Proactive`] (respond
//!   to the *predicted next* phase, GPHT by default);
//! * [`manager`] — the interval loop + interrupt handler that ties a
//!   workload (any streaming `IntervalSource`, or a buffered trace), the
//!   simulated CPU, a phase map and a policy together;
//! * [`session`] — shared-platform experiment sessions, per-interval
//!   observers, and the order-preserving parallel sweep primitive;
//! * [`conservative`] — Section 6.3: deriving alternative phase
//!   definitions that bound worst-case performance degradation;
//! * [`report`] — run summaries and baseline-normalized comparisons
//!   (EDP improvement, performance degradation, power/energy savings).
//!
//! ```
//! use livephase_governor::{manager::Manager, policy};
//! use livephase_pmsim::PlatformConfig;
//! use livephase_workloads::spec;
//!
//! let trace = spec::benchmark("applu_in").unwrap().with_length(60).generate(1);
//! let platform = PlatformConfig::pentium_m();
//! let baseline = Manager::baseline().run(&trace, &platform);
//! let managed = Manager::gpht_deployed().run(&trace, &platform);
//! let cmp = managed.compare_to(&baseline);
//! assert!(cmp.edp_improvement_pct() > 0.0, "GPHT-managed EDP improves");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod conservative;
pub mod dwell;
pub mod estimate;
pub mod manager;
pub mod policy;
pub mod report;
pub mod session;
pub mod thermal;

pub use livephase_engine::table;

pub use conservative::ConservativeDerivation;
pub use dwell::MinDwell;
pub use estimate::PowerEstimator;
pub use manager::{AdaptiveSampling, Manager, ManagerConfig};
pub use policy::{Baseline, Environment, Oracle, Policy, Proactive, Reactive};
pub use report::{IntervalLog, NormalizedComparison, RunReport};
pub use session::{par_map, IntervalObserver, Session};
pub use table::{TranslationTable, TranslationTableError};
pub use thermal::{PowerCap, ThermalAware};
