//! Experiment sessions: shared-platform runs, per-interval observers, and
//! deterministic parallel sweeps.
//!
//! Every figure and ablation driver repeats the same skeleton: build the
//! paper's platform once, run one workload under a handful of managed
//! systems, and collect the reports. [`Session`] captures that skeleton —
//! it borrows one [`PlatformConfig`] for its whole lifetime (no
//! clone-per-run) and hands out runs under the standard policies or any
//! custom [`Manager`].
//!
//! [`IntervalObserver`] is the streaming tap: attached to a run it sees
//! every [`IntervalLog`] the instant the PMI handler files it, which is
//! how live DAQ logging and thermal watchdogs integrate without waiting
//! for the report.
//!
//! [`par_map`] is the sweep primitive: it fans a work list over scoped
//! worker threads and returns results **in input order**, so a parallel
//! sweep is element-for-element identical to the sequential loop it
//! replaces — per-item determinism (independent seeding) is preserved and
//! only wall-clock time changes.

use crate::manager::{Manager, ManagerConfig};
use crate::policy::Policy;
use crate::report::{IntervalLog, RunReport};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::IntoIntervalSource;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A streaming tap on a managed run.
///
/// Both hooks default to no-ops so observers implement only what they
/// watch; `()` is the null observer.
pub trait IntervalObserver {
    /// Called right after the PMI handler logs each interval (including
    /// the partial tail of a run that ends off the sampling grid).
    fn on_interval(&mut self, interval: &IntervalLog) {
        let _ = interval;
    }

    /// Called once with the finished report.
    fn on_complete(&mut self, report: &RunReport) {
        let _ = report;
    }
}

/// The null observer.
impl IntervalObserver for () {}

/// Observers compose by pairing: both see every event, left first.
impl<A: IntervalObserver, B: IntervalObserver> IntervalObserver for (A, B) {
    fn on_interval(&mut self, interval: &IntervalLog) {
        self.0.on_interval(interval);
        self.1.on_interval(interval);
    }

    fn on_complete(&mut self, report: &RunReport) {
        self.0.on_complete(report);
        self.1.on_complete(report);
    }
}

/// A borrowed platform plus a handler configuration: the fixed context an
/// experiment runs its workloads in.
#[derive(Debug, Clone)]
pub struct Session<'p> {
    platform: &'p PlatformConfig,
    config: ManagerConfig,
}

impl<'p> Session<'p> {
    /// Creates a session on `platform` with the deployed handler
    /// configuration.
    #[must_use]
    pub fn new(platform: &'p PlatformConfig) -> Self {
        Self {
            platform,
            config: ManagerConfig::pentium_m(),
        }
    }

    /// Replaces the handler configuration (thermal tracking, adaptive
    /// sampling, alternative phase maps) for subsequent runs.
    #[must_use]
    pub fn with_config(mut self, config: ManagerConfig) -> Self {
        self.config = config;
        self
    }

    /// The platform every run shares.
    #[must_use]
    pub fn platform(&self) -> &'p PlatformConfig {
        self.platform
    }

    /// The handler configuration applied to the standard-policy runs.
    #[must_use]
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Runs `workload` unmanaged (always full speed).
    #[must_use]
    pub fn baseline(&self, workload: impl IntoIntervalSource) -> RunReport {
        self.run(Manager::baseline_with(self.config.clone()), workload)
    }

    /// Runs `workload` under last-value reactive management.
    #[must_use]
    pub fn reactive(&self, workload: impl IntoIntervalSource) -> RunReport {
        self.run(Manager::reactive_with(self.config.clone()), workload)
    }

    /// Runs `workload` under the paper's deployed GPHT system.
    #[must_use]
    pub fn gpht(&self, workload: impl IntoIntervalSource) -> RunReport {
        self.run(Manager::gpht_deployed_with(self.config.clone()), workload)
    }

    /// Runs `workload` under an arbitrary policy with this session's
    /// handler configuration.
    #[must_use]
    pub fn run_policy(
        &self,
        policy: Box<dyn Policy>,
        workload: impl IntoIntervalSource,
    ) -> RunReport {
        self.run(Manager::new(policy, self.config.clone()), workload)
    }

    /// Runs `workload` under a fully custom manager on the shared platform.
    #[must_use]
    pub fn run(&self, manager: Manager, workload: impl IntoIntervalSource) -> RunReport {
        manager.run(workload, self.platform)
    }

    /// [`run`](Self::run) with an [`IntervalObserver`] attached.
    #[must_use]
    pub fn run_observed(
        &self,
        manager: Manager,
        workload: impl IntoIntervalSource,
        observer: &mut impl IntervalObserver,
    ) -> RunReport {
        manager.run_observed(workload, self.platform, observer)
    }
}

/// Maps `f` over `items` on scoped worker threads, returning results in
/// input order.
///
/// Work is handed out through an atomic cursor, so threads never partition
/// the list statically; results come home over a channel tagged with their
/// index and are reassembled in order. With one item (or one available
/// core) this degrades to the plain sequential loop. Either way the output
/// is **identical** to `items.iter().map(f).collect()` whenever `f` is a
/// pure function of its argument — which every experiment driver
/// guarantees by seeding each item independently.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    livephase_telemetry::global()
        .counter(
            "governor_parmap_jobs_total",
            "Sweep work items executed by par_map.",
            &[],
        )
        .add(n as u64);
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // lint:allow(no-panic-path): i < n = items.len() by the break above
                if tx.send((i, f(&items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, r) in rx {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(r);
            }
        }
        // Workers claim each index exactly once, so every slot is filled.
        slots.into_iter().flatten().collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_workloads::spec;

    fn trace(name: &str, len: usize) -> livephase_workloads::WorkloadTrace {
        spec::benchmark(name).unwrap().with_length(len).generate(11)
    }

    #[test]
    fn session_runs_the_three_systems_without_cloning_the_platform() {
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let t = trace("applu_in", 40);
        let b = session.baseline(&t);
        let r = session.reactive(&t);
        let g = session.gpht(&t);
        assert_eq!(b.policy, "Baseline");
        assert!(r.policy.contains("Reactive"));
        assert!(g.policy.contains("GPHT"));
        assert!(g.totals.energy_j < b.totals.energy_j);
    }

    #[test]
    fn session_matches_direct_manager_runs() {
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let t = trace("crafty_in", 30);
        assert_eq!(
            session.gpht(&t),
            Manager::gpht_deployed().run(&t, &platform)
        );
    }

    #[test]
    fn observer_sees_every_interval_and_the_report() {
        struct Counter {
            intervals: usize,
            completed: usize,
        }
        impl IntervalObserver for Counter {
            fn on_interval(&mut self, _: &IntervalLog) {
                self.intervals += 1;
            }
            fn on_complete(&mut self, report: &RunReport) {
                self.completed += 1;
                assert_eq!(report.intervals.len(), self.intervals);
            }
        }
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let t = trace("swim_in", 25);
        let mut counter = Counter {
            intervals: 0,
            completed: 0,
        };
        let report = session.run_observed(Manager::gpht_deployed(), &t, &mut counter);
        assert_eq!(counter.intervals, report.intervals.len());
        assert_eq!(counter.completed, 1);
    }

    #[test]
    fn paired_observers_both_fire() {
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let t = trace("swim_in", 5);
        struct Tally(usize);
        impl IntervalObserver for Tally {
            fn on_interval(&mut self, _: &IntervalLog) {
                self.0 += 1;
            }
        }
        let mut pair = (Tally(0), Tally(0));
        let _ = session.run_observed(Manager::baseline(), &t, &mut pair);
        assert_eq!(pair.0 .0, 5);
        assert_eq!(pair.1 .0, 5);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_input_yields_empty_output() {
        assert_eq!(par_map::<usize, usize>(&[], |_| 0), Vec::<usize>::new());
    }

    #[test]
    fn par_map_single_item_degrades_to_sequential() {
        assert_eq!(par_map(&[7usize], |&i| i + 1), vec![8]);
    }

    #[test]
    fn par_map_more_workers_than_items_stays_in_order() {
        // Worker count clamps to the item count, so any machine — however
        // many cores — runs 2- and 3-item lists correctly and in order.
        // Stagger completion so a later item finishing first would expose
        // an ordering bug.
        for n in [2usize, 3, 5] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |&i| {
                std::thread::sleep(std::time::Duration::from_millis(((n - i) * 5) as u64));
                i * 10
            });
            assert_eq!(out, items.iter().map(|&i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn decision_trace_tracks_interval_settings() {
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let t = trace("applu_in", 50);
        let r = session.gpht(&t);
        let d = r.decision_trace();
        assert_eq!(d.len(), r.intervals.len() - 1);
        assert_eq!(
            d,
            r.intervals[1..]
                .iter()
                .map(|i| i.dvfs_index)
                .collect::<Vec<_>>()
        );
        assert!(d.iter().any(|&s| s > 0), "applu switches settings");
    }

    #[test]
    fn parallel_runs_equal_sequential_runs() {
        let platform = PlatformConfig::pentium_m();
        let session = Session::new(&platform);
        let names = ["applu_in", "crafty_in", "swim_in", "mcf_inp"];
        let sequential: Vec<RunReport> = names.iter().map(|n| session.gpht(trace(n, 30))).collect();
        let parallel = par_map(&names, |n| session.gpht(trace(n, 30)));
        assert_eq!(sequential, parallel);
    }
}
