//! Deriving performance-bounded phase definitions (Section 6.3).
//!
//! The original Table 1/Table 2 configuration trades up to ≈ 10 % slowdown
//! for energy. When a deployment cannot accept that, the paper shows the
//! framework can be *reconfigured in place*: re-run the IPCxMEM
//! characterization, find for every DVFS setting the Mem/Uop region where
//! the slowdown it causes stays within a target bound, and redefine the
//! phases (and their DVFS look-up table) to those domains.
//!
//! [`ConservativeDerivation`] reproduces that procedure analytically: for
//! each setting it sweeps Mem/Uop, evaluates the slowdown of the
//! *reference behaviour family* at that memory intensity
//! ([`PhaseLevel::reference_family`]) through the platform timing model,
//! and places the phase boundary at the lowest Mem/Uop from which the
//! slowdown stays within the bound.

use crate::manager::{Manager, ManagerConfig};
use crate::policy::Proactive;
use crate::table::TranslationTable;
use livephase_core::{Gpht, GphtConfig, PhaseMap};
use livephase_pmsim::opp::OperatingPointTable;
use livephase_pmsim::timing::TimingModel;
use livephase_workloads::PhaseLevel;

/// The conservative phase-definition derivation.
#[derive(Debug, Clone)]
pub struct ConservativeDerivation {
    timing: TimingModel,
    opps: OperatingPointTable,
    /// Sweep resolution on the Mem/Uop axis.
    scan_step: f64,
    /// Upper end of the Mem/Uop sweep (covers mcf with margin).
    scan_max: f64,
    /// Fraction of the degradation budget spent on steady-state slowdown;
    /// the rest is headroom for misprediction transients (a mispredicted
    /// interval briefly runs at a setting derived for a different phase).
    steady_state_share: f64,
}

impl ConservativeDerivation {
    /// The derivation for the paper's platform: 70 % of the budget for
    /// steady-state slowdown, 30 % headroom for misprediction transients —
    /// which is how the paper's deployed system lands at 0.3–3.2 % actual
    /// degradation under a 5 % bound.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            timing: TimingModel::pentium_m(),
            opps: OperatingPointTable::pentium_m(),
            scan_step: 1e-4,
            scan_max: 0.15,
            steady_state_share: 0.70,
        }
    }

    /// Fractional slowdown (0.05 = 5 %) of running the reference behaviour
    /// at `mem_uop` on setting `setting` instead of the fastest setting.
    ///
    /// # Panics
    ///
    /// Panics if `setting` is out of range for the platform.
    #[must_use]
    pub fn degradation(&self, mem_uop: f64, setting: usize) -> f64 {
        let Some(opp) = self.opps.get(setting) else {
            // lint:allow(no-panic-path): documented panic contract of a
            // derivation-time API; runs at construction, never per-sample
            panic!("setting {setting} is out of range for the platform table");
        };
        let fastest = self.opps.fastest();
        let level = PhaseLevel::reference_family(mem_uop);
        let work = level.interval(100_000_000, 1.25, mem_uop);
        let t_fast = self.timing.execute(&work, fastest.frequency).seconds;
        let t_slow = self.timing.execute(&work, opp.frequency).seconds;
        t_slow / t_fast - 1.0
    }

    /// Derives the phase map and translation table that bound the
    /// reference-behaviour slowdown by `target` (e.g. `0.05` for the
    /// paper's 5 % experiment).
    ///
    /// Returns the new `(PhaseMap, TranslationTable)` pair; settings whose
    /// admissible region starts beyond the sweep range are dropped (they
    /// are never worth their slowdown under the bound).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1)`.
    #[must_use]
    pub fn derive(&self, target: f64) -> (PhaseMap, TranslationTable) {
        assert!(
            target > 0.0 && target < 1.0,
            "degradation target must be a fraction in (0, 1), got {target}"
        );
        let steady_target = target * self.steady_state_share;
        let mut boundaries: Vec<f64> = Vec::new();
        let mut settings: Vec<usize> = vec![0];
        for k in 1..self.opps.len() {
            match self.admissible_from(k, steady_target) {
                Some(m) => {
                    if m > 0.0 && boundaries.last().is_none_or(|&b| m > b) {
                        boundaries.push(m);
                        settings.push(k);
                    } else {
                        // This setting is admissible from the start of the
                        // previous band, which is therefore empty: the
                        // deeper setting takes it over.
                        if let Some(last) = settings.last_mut() {
                            *last = k;
                        }
                    }
                }
                None => break, // slower settings are never admissible
            }
        }
        if boundaries.is_empty() {
            // No setting earns its own band under the bound: degenerate to
            // a single full-speed region (one dummy boundary at the sweep
            // end keeps the map well-formed).
            boundaries.push(self.scan_max);
            let first = settings.first().copied().unwrap_or(0);
            settings = vec![first, first];
        }
        let map = match PhaseMap::new(boundaries) {
            Ok(map) => map,
            Err(_) => unreachable!("derived boundaries are strictly increasing by the band scan"),
        };
        let table = match TranslationTable::new(settings, self.opps.len()) {
            Ok(table) => table,
            Err(_) => unreachable!("derived settings are monotonic and in range by construction"),
        };
        (map, table)
    }

    /// A ready-to-run GPHT manager over the derived conservative
    /// definitions.
    #[must_use]
    pub fn manager(&self, target: f64) -> Manager {
        let (map, table) = self.derive(target);
        Manager::new(
            Box::new(Proactive::new(Gpht::new(GphtConfig::DEPLOYED), table)),
            ManagerConfig {
                phase_map: map,
                ..ManagerConfig::pentium_m()
            },
        )
    }

    /// The smallest swept Mem/Uop from which `setting`'s slowdown stays
    /// within `target` for the rest of the sweep range, if any.
    fn admissible_from(&self, setting: usize, target: f64) -> Option<f64> {
        let steps = (self.scan_max / self.scan_step).ceil() as usize;
        // Walk backwards so we can demand the *suffix* stays admissible
        // (the reference family is piecewise and not strictly monotone).
        let mut from: Option<f64> = None;
        for i in (0..=steps).rev() {
            #[allow(clippy::cast_precision_loss)]
            let m = i as f64 * self.scan_step;
            if self.degradation(m, setting) <= target {
                from = Some(m);
            } else if from.is_some() {
                break;
            }
        }
        from
    }
}

impl Default for ConservativeDerivation {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_core::PhaseId;

    fn derivation() -> ConservativeDerivation {
        ConservativeDerivation::pentium_m()
    }

    #[test]
    fn degradation_grows_with_slower_settings() {
        let d = derivation();
        for &m in &[0.0, 0.008, 0.015, 0.025, 0.05] {
            let degs: Vec<f64> = (0..6).map(|k| d.degradation(m, k)).collect();
            assert_eq!(degs[0], 0.0, "fastest setting costs nothing");
            for w in degs.windows(2) {
                assert!(w[1] >= w[0], "slower settings degrade more at m={m}");
            }
        }
    }

    #[test]
    fn memory_bound_code_degrades_less() {
        let d = derivation();
        assert!(d.degradation(0.05, 5) < d.degradation(0.0, 5));
    }

    #[test]
    fn derived_map_bounds_reference_degradation() {
        let d = derivation();
        let (map, table) = d.derive(0.05);
        // Probe the whole axis: whatever phase a rate classifies to, the
        // assigned setting must respect the bound for the reference family.
        let mut m = 0.0;
        while m < 0.12 {
            let phase = map.classify(m);
            let setting = table.setting_for(phase);
            let deg = d.degradation(m, setting);
            assert!(
                deg <= 0.05 + 1e-9,
                "m={m}: phase {phase} -> setting {setting} degrades {deg}"
            );
            m += 0.0007;
        }
    }

    #[test]
    fn conservative_map_is_stricter_than_table1() {
        let (map, table) = derivation().derive(0.05);
        let original = TranslationTable::pentium_m();
        let original_map = PhaseMap::pentium_m();
        // At every probed rate the conservative setting is at least as fast
        // (lower index) as the original Table 2 assignment.
        for &m in &[0.001, 0.007, 0.012, 0.018, 0.025, 0.05, 0.11] {
            let cons = table.setting_for(map.classify(m));
            let orig = original.setting_for(original_map.classify(m));
            assert!(
                cons <= orig,
                "m={m}: conservative {cons} vs original {orig}"
            );
        }
    }

    #[test]
    fn tighter_bounds_give_fewer_or_faster_settings() {
        let d = derivation();
        let (_, strict) = d.derive(0.01);
        let (_, loose) = d.derive(0.10);
        // The strict table must not reach deeper settings than the loose.
        let max_strict = strict.settings().iter().max().unwrap();
        let max_loose = loose.settings().iter().max().unwrap();
        assert!(max_strict <= max_loose);
    }

    #[test]
    fn derived_artifacts_are_consistent() {
        let (map, table) = derivation().derive(0.05);
        assert!(table.covers(&map));
        assert_eq!(table.settings()[0], 0, "phase 1 always runs full speed");
        // First boundary exists: some region must stay at full speed.
        assert!(map.boundaries()[0] > 0.0);
        let _ = table.setting_for(PhaseId::new(1));
    }

    #[test]
    #[should_panic(expected = "degradation target")]
    fn rejects_silly_targets() {
        let _ = derivation().derive(1.5);
    }
}
