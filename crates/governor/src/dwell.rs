//! Transition-rate control: a minimum-dwell decorator for any policy.
//!
//! Every real voltage/frequency switch costs a stall and regulator wear;
//! a policy that flips settings each interval on a noisy workload pays
//! that cost continuously. [`MinDwell`] wraps any [`Policy`] and holds
//! each applied setting for at least *N* sampling intervals before
//! honouring a change request — the standard governor hysteresis knob
//! (cf. Linux cpufreq's `sampling_down_factor`).

use crate::policy::{Environment, Policy};
use livephase_core::{PhaseId, PhaseSample};

/// Holds the wrapped policy's setting for at least `min_dwell` intervals.
#[derive(Debug)]
pub struct MinDwell<P> {
    inner: P,
    min_dwell: u32,
    current: Option<usize>,
    held_for: u32,
}

impl<P: Policy> MinDwell<P> {
    /// Wraps `inner`, enforcing at least `min_dwell` intervals per setting.
    ///
    /// # Panics
    ///
    /// Panics if `min_dwell` is zero (that would be a no-op; express it by
    /// not wrapping).
    #[must_use]
    pub fn new(inner: P, min_dwell: u32) -> Self {
        assert!(min_dwell >= 1, "minimum dwell must be at least 1 interval");
        Self {
            inner,
            min_dwell,
            current: None,
            held_for: 0,
        }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The configured minimum dwell, in sampling intervals.
    #[must_use]
    pub fn min_dwell(&self) -> u32 {
        self.min_dwell
    }

    fn gate(&mut self, wanted: usize) -> usize {
        match self.current {
            Some(cur) if wanted != cur && self.held_for < self.min_dwell => {
                // Too soon: keep holding.
                self.held_for += 1;
                cur
            }
            Some(cur) if wanted == cur => {
                self.held_for = self.held_for.saturating_add(1);
                cur
            }
            _ => {
                self.current = Some(wanted);
                self.held_for = 1;
                wanted
            }
        }
    }
}

impl<P: Policy> Policy for MinDwell<P> {
    fn decide(&mut self, sample: PhaseSample) -> usize {
        let wanted = self.inner.decide(sample);
        self.gate(wanted)
    }

    fn decide_with_env(&mut self, sample: PhaseSample, env: &Environment) -> usize {
        let wanted = self.inner.decide_with_env(sample, env);
        self.gate(wanted)
    }

    fn predicted_phase(&self) -> Option<PhaseId> {
        self.inner.predicted_phase()
    }

    fn name(&self) -> String {
        format!("MinDwell_{}({})", self.min_dwell, self.inner.name())
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.current = None;
        self.held_for = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Manager, ManagerConfig};
    use crate::policy::Proactive;
    use crate::table::TranslationTable;
    use livephase_core::{Gpht, GphtConfig};
    use livephase_pmsim::PlatformConfig;
    use livephase_workloads::spec;

    fn sample(phase: u8) -> PhaseSample {
        PhaseSample::new(f64::from(phase) * 0.005, PhaseId::new(phase))
    }

    #[test]
    fn holds_the_setting_for_the_dwell() {
        let inner = crate::policy::Reactive::new(TranslationTable::pentium_m());
        let mut p = MinDwell::new(inner, 3);
        assert_eq!(p.decide(sample(6)), 5);
        // Flapping requests are suppressed while held_for < 3.
        assert_eq!(p.decide(sample(1)), 5);
        assert_eq!(p.decide(sample(1)), 5);
        // Dwell satisfied: the change goes through.
        assert_eq!(p.decide(sample(1)), 0);
    }

    #[test]
    fn steady_requests_pass_through() {
        let inner = crate::policy::Reactive::new(TranslationTable::pentium_m());
        let mut p = MinDwell::new(inner, 5);
        for _ in 0..10 {
            assert_eq!(p.decide(sample(3)), 2);
        }
    }

    #[test]
    fn reduces_transitions_on_noisy_workloads() {
        let trace = spec::benchmark("equake_in")
            .unwrap()
            .with_length(400)
            .generate(3);
        let platform = PlatformConfig::pentium_m();
        let plain = Manager::gpht_deployed().run(&trace, &platform);
        let damped = Manager::new(
            Box::new(MinDwell::new(
                Proactive::new(
                    Gpht::new(GphtConfig::DEPLOYED),
                    TranslationTable::pentium_m(),
                ),
                2,
            )),
            ManagerConfig::pentium_m(),
        )
        .run(&trace, &platform);
        assert!(
            damped.dvfs_transitions < plain.dvfs_transitions,
            "dwell {} vs plain {}",
            damped.dvfs_transitions,
            plain.dvfs_transitions
        );
        // The EDP cost of damping stays modest on a learnable workload.
        assert!(
            damped.totals.edp() < plain.totals.edp() * 1.15,
            "damping should not wreck efficiency"
        );
    }

    #[test]
    fn name_and_reset() {
        let inner = crate::policy::Reactive::new(TranslationTable::pentium_m());
        let mut p = MinDwell::new(inner, 4);
        assert_eq!(p.name(), "MinDwell_4(Reactive(LastValue))");
        assert_eq!(p.min_dwell(), 4);
        let _ = p.decide(sample(6));
        p.reset();
        assert_eq!(p.decide(sample(2)), 1, "fresh after reset");
        let _ = p.inner();
    }

    #[test]
    #[should_panic(expected = "minimum dwell")]
    fn zero_dwell_rejected() {
        let _ = MinDwell::new(
            crate::policy::Reactive::new(TranslationTable::pentium_m()),
            0,
        );
    }
}
