//! Run reports and baseline-normalized comparisons.

use livephase_core::{PhaseId, PredictionStats};
use livephase_pmsim::cpu::RunTotals;
use livephase_pmsim::trace::PowerTrace;
use serde::{Deserialize, Serialize};

/// What the kernel log records per sampling interval (Section 5.4: "actual
/// observed and predicted phases for each sample as well as memory
/// accesses per Uop and Uops per cycle").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalLog {
    /// Zero-based interval index.
    pub index: usize,
    /// Observed Mem/Uop for the interval.
    pub mem_uop: f64,
    /// Observed UPC for the interval.
    pub upc: f64,
    /// Phase the interval was classified into.
    pub phase: PhaseId,
    /// Phase that had been predicted for this interval (`None` for the
    /// first interval and for non-predicting policies).
    pub predicted: Option<PhaseId>,
    /// DVFS setting index in effect when the interval's PMI fired.
    pub dvfs_index: usize,
    /// Wall-clock duration of the interval, in seconds.
    pub duration_s: f64,
    /// Energy consumed in the interval, in joules.
    pub energy_j: f64,
    /// Instructions retired in the interval.
    pub instructions: u64,
}

impl IntervalLog {
    /// Billions of instructions per second achieved in this interval.
    #[must_use]
    pub fn bips(&self) -> f64 {
        if self.duration_s == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.duration_s / 1e9
        }
    }

    /// Average power over this interval, in watts.
    #[must_use]
    pub fn power_w(&self) -> f64 {
        if self.duration_s == 0.0 {
            0.0
        } else {
            self.energy_j / self.duration_s
        }
    }
}

/// The complete outcome of one managed (or baseline) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Ground-truth totals.
    pub totals: RunTotals,
    /// Next-phase prediction accuracy over the run.
    pub prediction: PredictionStats,
    /// Per-interval log.
    pub intervals: Vec<IntervalLog>,
    /// Number of actual DVFS transitions performed.
    pub dvfs_transitions: u64,
    /// Peak junction temperature over the run, when the manager tracked a
    /// thermal model.
    pub peak_temperature_c: Option<f64>,
    /// Junction temperature at the end of the run, when tracked.
    pub final_temperature_c: Option<f64>,
    /// The analog power waveform, when the platform recorded one.
    pub power_trace: Option<PowerTrace>,
}

impl RunReport {
    /// Whole-run BIPS.
    #[must_use]
    pub fn bips(&self) -> f64 {
        self.totals.bips()
    }

    /// Whole-run average power in watts.
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        self.totals.average_power_w()
    }

    /// Whole-run energy-delay product in joule-seconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.totals.edp()
    }

    /// The DVFS decisions the policy made, as observable from the
    /// interval log.
    ///
    /// The decision taken at PMI *k* governs interval *k + 1*, so the
    /// sequence is `intervals[1..]`'s `dvfs_index` — one entry per PMI
    /// except the last, whose chosen setting no logged interval ran
    /// under. This is the oracle a remote phase-prediction service is
    /// checked against: a server fed the same counter stream must emit
    /// exactly these settings.
    #[must_use]
    pub fn decision_trace(&self) -> Vec<usize> {
        self.intervals
            .iter()
            .skip(1)
            .map(|i| i.dvfs_index)
            .collect()
    }

    /// Normalizes this run against a baseline run of the same workload.
    ///
    /// # Panics
    ///
    /// Panics if the baseline retired a different instruction count (the
    /// comparison would be meaningless) or has zero time/energy.
    #[must_use]
    pub fn compare_to(&self, baseline: &RunReport) -> NormalizedComparison {
        assert_eq!(
            self.totals.instructions, baseline.totals.instructions,
            "compared runs must execute the same work"
        );
        assert!(
            baseline.totals.time_s > 0.0 && baseline.totals.energy_j > 0.0,
            "baseline must have run"
        );
        NormalizedComparison {
            bips_ratio: self.bips() / baseline.bips(),
            power_ratio: self.average_power_w() / baseline.average_power_w(),
            energy_ratio: self.totals.energy_j / baseline.totals.energy_j,
            edp_ratio: self.edp() / baseline.edp(),
        }
    }
}

/// A managed run normalized to its baseline, in the units of Figures 11–13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedComparison {
    /// Managed BIPS / baseline BIPS (≤ 1 in practice).
    pub bips_ratio: f64,
    /// Managed average power / baseline average power.
    pub power_ratio: f64,
    /// Managed energy / baseline energy.
    pub energy_ratio: f64,
    /// Managed EDP / baseline EDP.
    pub edp_ratio: f64,
}

impl NormalizedComparison {
    /// Percent EDP improvement over baseline (positive is better).
    #[must_use]
    pub fn edp_improvement_pct(&self) -> f64 {
        (1.0 - self.edp_ratio) * 100.0
    }

    /// Percent performance (BIPS) degradation versus baseline.
    #[must_use]
    pub fn perf_degradation_pct(&self) -> f64 {
        (1.0 - self.bips_ratio) * 100.0
    }

    /// Percent average-power savings versus baseline.
    #[must_use]
    pub fn power_savings_pct(&self) -> f64 {
        (1.0 - self.power_ratio) * 100.0
    }

    /// Percent energy savings versus baseline.
    #[must_use]
    pub fn energy_savings_pct(&self) -> f64 {
        (1.0 - self.energy_ratio) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(time_s: f64, energy_j: f64) -> RunReport {
        RunReport {
            workload: "toy".into(),
            policy: "test".into(),
            totals: RunTotals {
                time_s,
                energy_j,
                instructions: 1_000_000,
                uops: 1_250_000,
                mem_transactions: 10_000,
            },
            prediction: PredictionStats::default(),
            intervals: vec![],
            dvfs_transitions: 0,
            peak_temperature_c: None,
            final_temperature_c: None,
            power_trace: None,
        }
    }

    #[test]
    fn comparison_math() {
        let baseline = report(1.0, 10.0);
        let managed = report(1.05, 6.0); // 5% slower, 40% less energy
        let c = managed.compare_to(&baseline);
        assert!((c.bips_ratio - 1.0 / 1.05).abs() < 1e-12);
        assert!((c.energy_ratio - 0.6).abs() < 1e-12);
        assert!((c.edp_ratio - 0.6 * 1.05).abs() < 1e-12);
        assert!((c.edp_improvement_pct() - 37.0).abs() < 0.1);
        assert!((c.perf_degradation_pct() - 4.76).abs() < 0.1);
        assert!((c.energy_savings_pct() - 40.0).abs() < 1e-9);
        assert!(c.power_savings_pct() > 0.0);
    }

    #[test]
    fn identical_runs_are_neutral() {
        let a = report(1.0, 10.0);
        let c = a.compare_to(&report(1.0, 10.0));
        assert!((c.edp_ratio - 1.0).abs() < 1e-12);
        assert_eq!(c.edp_improvement_pct(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same work")]
    fn rejects_mismatched_instruction_counts() {
        let mut other = report(1.0, 10.0);
        other.totals.instructions = 5;
        let _ = report(1.0, 10.0).compare_to(&other);
    }

    #[test]
    fn interval_log_derived_metrics() {
        let log = IntervalLog {
            index: 0,
            mem_uop: 0.01,
            upc: 1.0,
            phase: PhaseId::new(3),
            predicted: None,
            dvfs_index: 2,
            duration_s: 0.1,
            energy_j: 1.0,
            instructions: 80_000_000,
        };
        assert!((log.bips() - 0.8).abs() < 1e-12);
        assert!((log.power_w() - 10.0).abs() < 1e-12);
    }
}
