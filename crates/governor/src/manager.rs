//! The management loop: Figure 8 of the paper, as executable code.
//!
//! At every PMI the handler:
//!
//! 1. stops and reads the performance counters (done inside
//!    [`Cpu::run_to_pmi`]);
//! 2. translates the counter readings to the corresponding phase;
//! 3. updates the predictor state and predicts the next phase;
//! 4. translates the predicted phase to a DVFS setting and applies it if
//!    it differs from the current one;
//! 5. clears the interrupt, reinitializes and restarts the counters.
//!
//! Steps 2–4 — the *decision* — are not implemented here: they are the
//! [`DecisionEngine`] from `livephase-engine`, the same pipeline the
//! serve shards and the experiment harness run. The manager contributes
//! what only an in-process run has: the simulated CPU, the PMI cadence,
//! handler and DVFS-transition overhead accounting, thermal integration
//! and adaptive sampling. (Policies that are *not* the paper's pipeline
//! — the unmanaged baseline, the oracle, thermally-aware wrappers — plug
//! in through the [`Policy`] trait instead.)
//!
//! The handler's own execution cost (≈ 10 µs) and any DVFS transition
//! (≈ 50 µs) are charged to the simulated CPU, so overheads — invisible at
//! the paper's 100 ms sampling intervals, exactly as claimed — are
//! nevertheless accounted for honestly.
//!
//! [`DecisionEngine`]: livephase_engine::DecisionEngine

use crate::policy::{Baseline, Policy};
use crate::report::{IntervalLog, RunReport};
use crate::session::IntervalObserver;
use crate::table::TranslationTable;
use livephase_core::{
    DurationPredictor, DurationScheme, PhaseId, PhaseMap, PhaseSample, StreamScorer,
};
use livephase_engine::{DecisionEngine, EngineConfig, EngineMetrics, Sample, TransitionTracker};
use livephase_pmsim::cpu::{Cpu, PmiRecord};
use livephase_pmsim::trace::pport;
use livephase_pmsim::PlatformConfig;
use livephase_workloads::{IntervalSource, IntoIntervalSource};
use std::time::Instant; // lint:allow(determinism): Instant feeds decision-latency telemetry only, never a decision input

/// Handler-side configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// The Mem/Uop → phase classification in force.
    pub phase_map: PhaseMap,
    /// Execution cost charged per PMI invocation, in seconds.
    pub handler_overhead_s: f64,
    /// When set, the manager integrates junction temperature over the run
    /// and exposes it to environment-aware policies (dynamic thermal
    /// management, Section 8 of the paper).
    pub thermal: Option<livephase_pmsim::ThermalModel>,
    /// When set, the handler stretches the PMI window through phases it
    /// predicts will persist — the application the companion
    /// duration-prediction work (ref \[14\]) targets. Fewer interrupts,
    /// same decisions, for long stable runs.
    pub adaptive_sampling: Option<AdaptiveSampling>,
}

/// Configuration of duration-guided adaptive sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSampling {
    /// The base sampling window, in uops (the paper's 100 M).
    pub base_uops: u64,
    /// Longest window, as a multiple of the base (bounds the damage of a
    /// wrong duration prediction).
    pub max_multiplier: u64,
}

impl AdaptiveSampling {
    /// A conservative default: stretch at most 4x over the 100 M base.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            base_uops: 100_000_000,
            max_multiplier: 4,
        }
    }

    fn validate(&self) {
        assert!(self.base_uops > 0, "base window must be positive");
        assert!(self.max_multiplier >= 1, "multiplier must be at least 1");
    }
}

impl ManagerConfig {
    /// The deployed configuration: Table 1 phases, 10 µs handler cost, no
    /// thermal tracking.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            phase_map: PhaseMap::pentium_m(),
            handler_overhead_s: 10e-6,
            thermal: None,
            adaptive_sampling: None,
        }
    }

    /// The engine deployment context matching this handler configuration:
    /// its phase map over the paper's Table 2 translation, on the Pentium
    /// M platform — the one constructor serve and the experiment drivers
    /// also derive from.
    fn engine_config(&self) -> EngineConfig {
        match EngineConfig::new(
            "pentium_m",
            self.phase_map.clone(),
            TranslationTable::pentium_m(),
        ) {
            Ok(config) => config,
            Err(_) => unreachable!("the Table 2 mapping encodes as one-byte op points"),
        }
    }

    fn validate(&self) {
        assert!(
            self.handler_overhead_s.is_finite() && self.handler_overhead_s >= 0.0,
            "handler overhead must be finite and non-negative"
        );
        if let Some(a) = &self.adaptive_sampling {
            a.validate();
        }
    }
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self::pentium_m()
    }
}

/// The in-process run's pid for its single simulated process: engine
/// state is keyed by pid, and a manager-driven run has exactly one.
const RUN_PID: u32 = 0;

/// What computes the per-interval decision: the shared
/// [`DecisionEngine`] (the paper's pipeline — reactive and proactive
/// systems alike), or a custom [`Policy`] for decision makers outside
/// that pipeline (baseline, oracle, thermal wrappers, conservative
/// derivations).
enum Decider {
    Policy(Box<dyn Policy>),
    Engine(Box<DecisionEngine>),
}

impl Decider {
    fn name(&self) -> String {
        match self {
            Self::Policy(p) => p.name(),
            Self::Engine(e) => e.name().to_owned(),
        }
    }
}

/// Drives a workload through the simulated CPU under a management policy.
pub struct Manager {
    decider: Decider,
    config: ManagerConfig,
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("policy", &self.decider.name())
            .field("config", &self.config)
            .finish()
    }
}

impl Manager {
    /// Creates a manager with an arbitrary policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(policy: Box<dyn Policy>, config: ManagerConfig) -> Self {
        config.validate();
        Self {
            decider: Decider::Policy(policy),
            config,
        }
    }

    /// Creates a manager that delegates every decision to a
    /// [`DecisionEngine`] — the same pipeline the serve shards run.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_engine(engine: DecisionEngine, config: ManagerConfig) -> Self {
        config.validate();
        Self {
            decider: Decider::Engine(Box::new(engine)),
            config,
        }
    }

    /// The unmanaged baseline system (always full speed).
    #[must_use]
    pub fn baseline() -> Self {
        Self::baseline_with(ManagerConfig::pentium_m())
    }

    /// The baseline system under a custom handler configuration.
    #[must_use]
    pub fn baseline_with(config: ManagerConfig) -> Self {
        Self::new(Box::new(Baseline::new()), config)
    }

    /// The reactive (last-value) manager of prior work, over the paper's
    /// Table 2 mapping: a last-value decision engine by another name.
    #[must_use]
    pub fn reactive() -> Self {
        Self::reactive_with(ManagerConfig::pentium_m())
    }

    /// The reactive manager under a custom handler configuration.
    #[must_use]
    pub fn reactive_with(config: ManagerConfig) -> Self {
        let engine = match DecisionEngine::from_spec(config.engine_config(), "lastvalue") {
            Ok(engine) => engine.with_name("Reactive(LastValue)"),
            Err(_) => unreachable!("lastvalue is a valid predictor spec"),
        };
        Self::with_engine(engine, config)
    }

    /// The paper's deployed system: proactive GPHT(8, 128) management over
    /// the Table 2 mapping.
    #[must_use]
    pub fn gpht_deployed() -> Self {
        Self::gpht_deployed_with(ManagerConfig::pentium_m())
    }

    /// The deployed GPHT system under a custom handler configuration.
    #[must_use]
    pub fn gpht_deployed_with(config: ManagerConfig) -> Self {
        let engine = match DecisionEngine::from_spec(config.engine_config(), "gpht:8:128") {
            Ok(engine) => engine,
            Err(_) => unreachable!("the deployed GPHT spec is valid"),
        };
        Self::with_engine(engine, config)
    }

    /// The policy's display name.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.decider.name()
    }

    /// Runs `workload` to completion on a fresh CPU sharing `platform`,
    /// returning the full run report.
    ///
    /// `workload` is anything that converts to an
    /// [`IntervalSource`]: a `&WorkloadTrace` (replayed from its buffer,
    /// exactly as before the streaming refactor) or any live source —
    /// intervals are pulled one at a time as the CPU consumes them, so a
    /// streamed run holds O(1) workload memory however long it is.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns a DVFS setting the platform does not
    /// have (a [`TranslationTable`] validated against the platform cannot).
    #[must_use]
    pub fn run(self, workload: impl IntoIntervalSource, platform: &PlatformConfig) -> RunReport {
        self.run_observed(workload, platform, &mut ())
    }

    /// [`run`](Self::run) with an [`IntervalObserver`] attached: the
    /// observer sees every logged interval as it happens (streaming DAQ
    /// logging, live thermal watchdogs) and the finished report.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run).
    #[must_use]
    pub fn run_observed(
        mut self,
        workload: impl IntoIntervalSource,
        platform: &PlatformConfig,
        observer: &mut impl IntervalObserver,
    ) -> RunReport {
        let mut source = workload.into_interval_source();
        let workload_name = source.name().to_owned();
        let mut cpu = Cpu::new(platform);
        let mut state = RunState {
            thermal: self.config.thermal.map(livephase_pmsim::ThermalState::new),
            ..RunState::default()
        };
        let metrics = EngineMetrics::new();
        cpu.set_pport_bits(pport::APP_RUNNING);

        while let Some(pmi) = cpu.run_to_pmi_with(|| source.next_interval()) {
            self.handle_pmi(&mut cpu, &pmi, &mut state, &metrics);
            if let Some(last) = state.intervals.last() {
                observer.on_interval(last);
            }
        }
        // A run that ends off the sampling grid leaves a partial interval:
        // log it (its Mem/Uop ratio is still meaningful) and score the
        // prediction that stood for it, without a policy action —
        // execution is over.
        if let Some(pmi) = cpu.flush_partial_interval() {
            let phase = self.config.phase_map.classify_rate(pmi.metrics.mem_uop());
            let standing = match &mut self.decider {
                Decider::Policy(_) => {
                    let standing = state.scorer.pending();
                    if let Some((_, correct)) = state.scorer.score(phase) {
                        metrics.record_scored(correct);
                    }
                    standing
                }
                Decider::Engine(engine) => {
                    let standing = engine.pending(RUN_PID);
                    let _ = engine.score_tail(RUN_PID, phase);
                    standing
                }
            };
            state.log_interval(&pmi, phase, standing);
            if let Some(last) = state.intervals.last() {
                observer.on_interval(last);
            }
        }
        cpu.set_pport_bits(0);
        state.transitions.flush();

        let (policy, prediction) = match &mut self.decider {
            Decider::Policy(p) => (p.name(), state.scorer.stats()),
            Decider::Engine(e) => {
                e.flush_metrics();
                (e.name().to_owned(), e.stats())
            }
        };
        let report = RunReport {
            workload: workload_name,
            policy,
            totals: cpu.totals(),
            prediction,
            intervals: state.intervals,
            dvfs_transitions: cpu.dvfs_transitions(),
            peak_temperature_c: state.thermal.as_ref().map(|t| t.peak_c()),
            final_temperature_c: state.thermal.as_ref().map(|t| t.temperature_c()),
            power_trace: if cpu.config().record_power_trace {
                Some(cpu.into_power_trace())
            } else {
                None
            },
        };
        observer.on_complete(&report);
        report
    }

    /// One PMI invocation: classify, predict, act.
    fn handle_pmi(
        &mut self,
        cpu: &mut Cpu<'_>,
        pmi: &PmiRecord,
        state: &mut RunState,
        metrics: &EngineMetrics,
    ) {
        let phase = self.config.phase_map.classify_rate(pmi.metrics.mem_uop());

        // Integrate the thermal model through the elapsed interval.
        let interval_power_w = if pmi.interval_seconds > 0.0 {
            pmi.interval_energy_j / pmi.interval_seconds
        } else {
            0.0
        };
        if let Some(thermal) = &mut state.thermal {
            thermal.advance(interval_power_w, pmi.interval_seconds);
        }

        // Toggle the phase-marker bit so the DAQ can attribute samples.
        let toggled = cpu.pport_bits() ^ pport::PHASE_TOGGLE;
        cpu.set_pport_bits(toggled);

        let (setting, standing) = match &mut self.decider {
            Decider::Policy(policy) => {
                // The pipeline the engine runs for its streams, inlined
                // for decision makers outside it: score the standing
                // prediction, decide, stand the next prediction.
                let standing = state.scorer.pending();
                if let Some((_, correct)) = state.scorer.score(phase) {
                    metrics.record_scored(correct);
                }
                let sample = PhaseSample {
                    rate: pmi.metrics.mem_uop(),
                    phase,
                };
                let env = crate::policy::Environment {
                    temperature_c: state.thermal.as_ref().map(|t| t.temperature_c()),
                    current_setting: pmi.dvfs_index,
                    interval_power_w,
                };
                let decide_started = Instant::now(); // lint:allow(determinism): decision-latency histogram only
                let setting = policy.decide_with_env(sample, &env);
                metrics.record_decision(decide_started.elapsed());
                state.transitions.record(env.current_setting, setting);
                match policy.predicted_phase() {
                    Some(p) => state.scorer.predict(p),
                    None => state.scorer.clear_pending(),
                }
                (setting, standing)
            }
            Decider::Engine(engine) => {
                let standing = engine.pending(RUN_PID);
                let decision = engine.step(&Sample {
                    pid: RUN_PID,
                    uops: pmi.metrics.uops_retired,
                    mem_transactions: pmi.metrics.mem_transactions,
                });
                debug_assert_eq!(
                    decision.phase, phase,
                    "engine classification must match the handler's"
                );
                (usize::from(decision.op_point), standing)
            }
        };
        state.log_interval(pmi, phase, standing);

        cpu.service_pmi_overhead(self.config.handler_overhead_s);
        if cpu.set_dvfs(setting).is_err() {
            // lint:allow(no-panic-path): a policy returning an out-of-range
            // setting is a programming error that must not be masked; every
            // shipped policy clamps to the platform table
            panic!("policy must return a platform-valid DVFS setting, got {setting}");
        }

        // Duration-guided sampling: stretch the next PMI window while the
        // predictor expects the current phase to persist.
        if let Some(cfg) = &self.config.adaptive_sampling {
            let durations = state
                .durations
                .get_or_insert_with(|| DurationPredictor::new(DurationScheme::LastDuration));
            durations.observe(phase);
            let multiplier = durations
                .predicted_remaining()
                .unwrap_or(0)
                .clamp(1, cfg.max_multiplier);
            cpu.set_pmi_granularity(cfg.base_uops * multiplier);
        }
    }
}

/// Book-keeping across PMI invocations.
#[derive(Default)]
struct RunState {
    intervals: Vec<IntervalLog>,
    /// Prediction scoring for the policy path; engine-backed runs score
    /// inside the engine instead.
    scorer: StreamScorer,
    thermal: Option<livephase_pmsim::ThermalState>,
    durations: Option<DurationPredictor>,
    /// DVFS transitions decided by the policy path, flushed to the
    /// registry once at run end so the PMI path never formats a label.
    /// Engine-backed runs account transitions inside the engine.
    transitions: TransitionTracker,
}

impl RunState {
    /// Logs one elapsed interval, classified as `phase`, against the
    /// prediction that was standing when it began.
    fn log_interval(&mut self, pmi: &PmiRecord, phase: PhaseId, predicted: Option<PhaseId>) {
        self.intervals.push(IntervalLog {
            index: self.intervals.len(),
            mem_uop: pmi.metrics.mem_uop().get(),
            upc: pmi.metrics.upc().get(),
            phase,
            predicted,
            dvfs_index: pmi.dvfs_index,
            duration_s: pmi.interval_seconds,
            energy_j: pmi.interval_energy_j,
            instructions: pmi.metrics.instructions_retired,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Proactive, Reactive};
    use livephase_workloads::{spec, WorkloadTrace};

    fn short_trace(name: &str, len: usize) -> WorkloadTrace {
        spec::benchmark(name).unwrap().with_length(len).generate(11)
    }

    #[test]
    fn baseline_never_switches() {
        let trace = short_trace("applu_in", 40);
        let r = Manager::baseline().run(&trace, &PlatformConfig::pentium_m());
        assert_eq!(r.dvfs_transitions, 0);
        assert_eq!(r.intervals.len(), 40);
        assert!(r.intervals.iter().all(|i| i.dvfs_index == 0));
        assert_eq!(r.policy, "Baseline");
    }

    #[test]
    fn managed_run_switches_and_saves_energy() {
        let trace = short_trace("applu_in", 80);
        let baseline = Manager::baseline().run(&trace, &PlatformConfig::pentium_m());
        let managed = Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());
        assert!(managed.dvfs_transitions > 0);
        assert!(managed.totals.energy_j < baseline.totals.energy_j);
        assert!(managed.totals.time_s > baseline.totals.time_s);
        let c = managed.compare_to(&baseline);
        assert!(
            c.edp_improvement_pct() > 0.0,
            "EDP {}",
            c.edp_improvement_pct()
        );
    }

    #[test]
    fn prediction_stats_are_scored() {
        let trace = short_trace("crafty_in", 50);
        let r = Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());
        assert_eq!(r.prediction.total, 49, "all but the first interval scored");
        assert!(
            r.prediction.accuracy() > 0.9,
            "stable workload predicts well"
        );
    }

    #[test]
    fn stable_workload_stays_mostly_at_one_setting() {
        let trace = short_trace("swim_in", 60);
        let r = Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());
        // swim is phase 5 throughout: after the first decision the CPU
        // should sit at setting 4 nearly always.
        let at_4 = r.intervals.iter().filter(|i| i.dvfs_index == 4).count();
        assert!(
            at_4 > 50,
            "{at_4} of {} intervals at setting 4",
            r.intervals.len()
        );
    }

    #[test]
    fn partial_tail_interval_is_logged() {
        // 1.5 sampling intervals of work.
        let spec = spec::benchmark("crafty_in").unwrap().with_length(2);
        let mut trace_intervals = spec.generate(1).intervals().to_vec();
        let half = trace_intervals[1].split_at_uops(50_000_000).0;
        trace_intervals[1] = half;
        let trace = WorkloadTrace::new("partial", trace_intervals);
        let r = Manager::baseline().run(&trace, &PlatformConfig::pentium_m());
        assert_eq!(r.intervals.len(), 2);
        assert!(r.intervals[1].duration_s < r.intervals[0].duration_s);
    }

    #[test]
    fn power_trace_is_returned_when_recorded() {
        let trace = short_trace("crafty_in", 5);
        let platform = PlatformConfig::pentium_m().with_power_trace();
        let r = Manager::baseline().run(&trace, &platform);
        let pt = r.power_trace.expect("trace recorded");
        assert!((pt.total_energy_j() - r.totals.energy_j).abs() < 1e-9);
        assert!((pt.total_time_s() - r.totals.time_s).abs() < 1e-12);
    }

    #[test]
    fn reactive_and_proactive_differ_on_variable_workloads() {
        let trace = short_trace("applu_in", 200);
        let reactive = Manager::reactive().run(&trace, &PlatformConfig::pentium_m());
        let proactive = Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());
        assert!(
            proactive.prediction.accuracy() > reactive.prediction.accuracy() + 0.1,
            "GPHT {} vs reactive {}",
            proactive.prediction.accuracy(),
            reactive.prediction.accuracy()
        );
    }

    /// The engine-backed constructors must be drop-in replacements for
    /// the policy objects they retired: same decisions, same scoring,
    /// same report, interval for interval.
    #[test]
    fn engine_backed_managers_match_their_policy_equivalents() {
        let cases: [(Manager, Manager); 2] = [
            (
                Manager::reactive(),
                Manager::new(
                    Box::new(Reactive::new(TranslationTable::pentium_m())),
                    ManagerConfig::pentium_m(),
                ),
            ),
            (
                Manager::gpht_deployed(),
                Manager::new(
                    Box::new(Proactive::gpht_deployed()),
                    ManagerConfig::pentium_m(),
                ),
            ),
        ];
        for (engine_backed, policy_backed) in cases {
            let trace = short_trace("applu_in", 120);
            let platform = PlatformConfig::pentium_m();
            let a = engine_backed.run(&trace, &platform);
            let b = policy_backed.run(&trace, &platform);
            assert_eq!(a.policy, b.policy, "names agree");
            assert_eq!(a.prediction, b.prediction, "scoring agrees");
            assert_eq!(a.decision_trace(), b.decision_trace(), "decisions agree");
            assert_eq!(a.dvfs_transitions, b.dvfs_transitions);
            assert_eq!(a.intervals.len(), b.intervals.len());
            for (x, y) in a.intervals.iter().zip(&b.intervals) {
                assert_eq!(x.phase, y.phase);
                assert_eq!(x.predicted, y.predicted);
                assert_eq!(x.dvfs_index, y.dvfs_index);
            }
        }
    }
}
