//! Phase-conditioned power estimation.
//!
//! Thermal and power-capping policies need to know, *before* committing to
//! a DVFS setting, roughly how much power the predicted phase will draw at
//! each candidate setting. The estimator evaluates the platform's timing
//! and power models on the reference behaviour of the phase's Mem/Uop
//! band — the same anchor the conservative derivation uses.

use livephase_core::{PhaseId, PhaseMap};
use livephase_pmsim::{
    AnalyticModel, OperatingPointTable, PlatformConfig, PowerInput, PowerModel, TimingModel,
};
use livephase_workloads::PhaseLevel;

/// Estimates per-setting power draw for each phase of a map.
#[derive(Debug, Clone)]
pub struct PowerEstimator {
    /// `table[phase.index()][setting]` in watts.
    table: Vec<Vec<f64>>,
}

impl PowerEstimator {
    /// Precomputes the estimate table for a phase map on a platform.
    /// Works against any [`PowerModel`] backend: the analytic default
    /// reads the timing model's core fraction (numerically identical to
    /// the pre-trait estimator), while learned backends additionally see
    /// the band's reference counter features.
    #[must_use]
    pub fn new(
        map: &PhaseMap,
        opps: &OperatingPointTable,
        timing: &TimingModel,
        power: &dyn PowerModel,
    ) -> Self {
        let table = map
            .phases()
            .map(|phase| {
                // Bounding policies must cover the *worst case within the
                // band*: power falls with memory intensity, so the hottest
                // behaviour a phase can hide is its lower Mem/Uop edge.
                let (band_low, _) = map.interval(phase);
                let level = PhaseLevel::reference_family(band_low);
                let work = level.interval(100_000_000, 1.25, level.mem_uop.max(1e-6));
                opps.iter()
                    .map(|(_, opp)| {
                        let exec = timing.execute(&work, opp.frequency);
                        let input = PowerInput {
                            core_fraction: exec.core_fraction(),
                            mem_uop: band_low,
                            upc: timing.upc(&work, opp.frequency),
                        };
                        power.power(opp, &input)
                    })
                    .collect()
            })
            .collect();
        Self { table }
    }

    /// The estimator for the paper's platform under Table 1 phases.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self::new(
            &PhaseMap::pentium_m(),
            &OperatingPointTable::pentium_m(),
            &TimingModel::pentium_m(),
            &AnalyticModel::pentium_m(),
        )
    }

    /// The estimator a platform configuration implies: Table 1 phases
    /// against the platform's own operating points, timing, and power
    /// backend — how `--power-model` reaches capping/thermal policies.
    #[must_use]
    pub fn for_platform(platform: &PlatformConfig) -> Self {
        Self::new(
            &PhaseMap::pentium_m(),
            &platform.opp_table,
            &platform.timing,
            &platform.power,
        )
    }

    /// Estimated power (watts) of `phase` at `setting`.
    ///
    /// Phases beyond the map clamp to the last band; settings beyond the
    /// platform clamp to the slowest.
    #[must_use]
    pub fn power_w(&self, phase: PhaseId, setting: usize) -> f64 {
        let row = &self.table[phase.index().min(self.table.len() - 1)]; // lint:allow(no-panic-path): index clamped below len; the table is non-empty by construction
        row[setting.min(row.len() - 1)] // lint:allow(no-panic-path): index clamped below len; rows are non-empty by construction
    }

    /// Number of settings per phase.
    #[must_use]
    pub fn settings(&self) -> usize {
        self.table.first().map_or(0, Vec::len)
    }

    /// The fastest (lowest-index) setting whose estimated power for
    /// `phase` stays at or below `cap_w`; falls back to the slowest
    /// setting when even that exceeds the cap.
    #[must_use]
    pub fn fastest_under_cap(&self, phase: PhaseId, cap_w: f64) -> usize {
        let row = &self.table[phase.index().min(self.table.len() - 1)]; // lint:allow(no-panic-path): index clamped below len; the table is non-empty by construction
        row.iter()
            .position(|&p| p <= cap_w)
            .unwrap_or(row.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_fall_with_setting() {
        let e = PowerEstimator::pentium_m();
        for phase in PhaseMap::pentium_m().phases() {
            for k in 1..e.settings() {
                assert!(
                    e.power_w(phase, k) < e.power_w(phase, k - 1),
                    "{phase} setting {k}"
                );
            }
        }
    }

    #[test]
    fn cpu_bound_draws_more_than_memory_bound() {
        let e = PowerEstimator::pentium_m();
        assert!(e.power_w(PhaseId::new(1), 0) > e.power_w(PhaseId::new(6), 0));
    }

    #[test]
    fn cap_selection_is_fastest_admissible() {
        let e = PowerEstimator::pentium_m();
        let p = PhaseId::new(1);
        let k = e.fastest_under_cap(p, 8.0);
        assert!(e.power_w(p, k) <= 8.0);
        if k > 0 {
            assert!(e.power_w(p, k - 1) > 8.0, "one faster would break the cap");
        }
    }

    #[test]
    fn impossible_cap_falls_back_to_slowest() {
        let e = PowerEstimator::pentium_m();
        assert_eq!(e.fastest_under_cap(PhaseId::new(1), 0.1), e.settings() - 1);
    }

    #[test]
    fn generous_cap_allows_full_speed() {
        let e = PowerEstimator::pentium_m();
        assert_eq!(e.fastest_under_cap(PhaseId::new(1), 100.0), 0);
    }

    #[test]
    fn clamping_is_safe() {
        let e = PowerEstimator::pentium_m();
        let beyond_phase = e.power_w(PhaseId::new(30), 0);
        assert!(beyond_phase > 0.0);
        let beyond_setting = e.power_w(PhaseId::new(1), 99);
        assert!((beyond_setting - e.power_w(PhaseId::new(1), 5)).abs() < 1e-12);
    }
}
