//! Phase-prediction-guided dynamic thermal management and power capping —
//! the other two applications the paper names for its framework
//! (Sections 1 and 8: "dynamic thermal management or bounding power
//! consumption").
//!
//! Both policies reuse the identical monitoring/prediction machinery and
//! differ only in how the predicted phase is translated into a setting:
//!
//! * [`ThermalAware`] applies the normal Table 2 translation, then
//!   *throttles further* whenever the projected junction temperature under
//!   the predicted phase's power would cross the limit — proactively,
//!   before the hot phase begins;
//! * [`PowerCap`] ignores the energy-efficiency mapping entirely and
//!   picks the fastest setting whose predicted-phase power estimate stays
//!   under the cap.

use crate::estimate::PowerEstimator;
use crate::policy::{Environment, Policy};
use crate::table::TranslationTable;
use livephase_core::{PhaseId, PhaseSample, Predictor};
use livephase_pmsim::ThermalModel;

/// Predictive dynamic thermal management on top of any phase predictor.
#[derive(Debug)]
pub struct ThermalAware<P> {
    predictor: P,
    table: TranslationTable,
    estimator: PowerEstimator,
    model: ThermalModel,
    /// Junction temperature limit, in °C.
    limit_c: f64,
    /// Safety margin below the limit, in °C.
    guard_c: f64,
    /// How far ahead the projection looks, in seconds.
    horizon_s: f64,
}

impl<P: Predictor> ThermalAware<P> {
    /// Creates a thermally-guarded policy.
    ///
    /// # Panics
    ///
    /// Panics if the limit is not above ambient or the guard/horizon are
    /// negative.
    #[must_use]
    pub fn new(
        predictor: P,
        table: TranslationTable,
        estimator: PowerEstimator,
        model: ThermalModel,
        limit_c: f64,
    ) -> Self {
        assert!(
            limit_c > model.t_ambient,
            "thermal limit must exceed ambient"
        );
        Self {
            predictor,
            table,
            estimator,
            model,
            limit_c,
            guard_c: 1.0,
            horizon_s: 2.0,
        }
    }

    /// The configured junction limit, in °C.
    #[must_use]
    pub fn limit_c(&self) -> f64 {
        self.limit_c
    }

    /// Whether running `phase` at `setting` from `t_now` would cross the
    /// guarded limit within the projection horizon.
    fn would_overheat(&self, t_now: f64, phase: PhaseId, setting: usize) -> bool {
        let power = self.estimator.power_w(phase, setting);
        let projected = self.model.step(t_now, power, self.horizon_s);
        projected > self.limit_c - self.guard_c
    }
}

impl<P: Predictor> Policy for ThermalAware<P> {
    fn decide(&mut self, sample: PhaseSample) -> usize {
        // Without temperature feedback, behave as plain proactive DVFS.
        self.table.setting_for(self.predictor.next(sample))
    }

    fn decide_with_env(&mut self, sample: PhaseSample, env: &Environment) -> usize {
        let phase = self.predictor.next(sample);
        let mut setting = self.table.setting_for(phase);
        if let Some(t_now) = env.temperature_c {
            let slowest = self.estimator.settings().saturating_sub(1);
            while setting < slowest && self.would_overheat(t_now, phase, setting) {
                setting += 1;
            }
        }
        setting
    }

    fn predicted_phase(&self) -> Option<PhaseId> {
        Some(self.predictor.predict())
    }

    fn name(&self) -> String {
        format!("ThermalAware_{}C({})", self.limit_c, self.predictor.name())
    }

    fn reset(&mut self) {
        self.predictor.reset();
    }
}

/// Bounds predicted power consumption: the fastest setting whose estimated
/// power for the predicted phase stays under the cap.
#[derive(Debug)]
pub struct PowerCap<P> {
    predictor: P,
    estimator: PowerEstimator,
    cap_w: f64,
}

impl<P: Predictor> PowerCap<P> {
    /// Creates a power-capping policy.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive.
    #[must_use]
    pub fn new(predictor: P, estimator: PowerEstimator, cap_w: f64) -> Self {
        assert!(cap_w > 0.0 && cap_w.is_finite(), "cap must be positive");
        Self {
            predictor,
            estimator,
            cap_w,
        }
    }

    /// The configured cap, in watts.
    #[must_use]
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }
}

impl<P: Predictor> Policy for PowerCap<P> {
    fn decide(&mut self, sample: PhaseSample) -> usize {
        let phase = self.predictor.next(sample);
        self.estimator.fastest_under_cap(phase, self.cap_w)
    }

    fn predicted_phase(&self) -> Option<PhaseId> {
        Some(self.predictor.predict())
    }

    fn name(&self) -> String {
        format!("PowerCap_{}W({})", self.cap_w, self.predictor.name())
    }

    fn reset(&mut self) {
        self.predictor.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{Manager, ManagerConfig};
    use livephase_core::{Gpht, GphtConfig};
    use livephase_pmsim::PlatformConfig;
    use livephase_workloads::spec;

    fn thermal_manager(limit_c: f64) -> Manager {
        let policy = ThermalAware::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
            PowerEstimator::pentium_m(),
            ThermalModel::pentium_m(),
            limit_c,
        );
        Manager::new(
            Box::new(policy),
            ManagerConfig {
                thermal: Some(ThermalModel::pentium_m()),
                ..ManagerConfig::pentium_m()
            },
        )
    }

    #[test]
    fn unmanaged_cpu_bound_run_overheats() {
        // crafty is CPU-bound: the baseline heats toward ~77 C steady state.
        let trace = spec::benchmark("crafty_in")
            .unwrap()
            .with_length(800)
            .generate(1);
        let baseline = Manager::new(
            Box::new(crate::policy::Baseline::new()),
            ManagerConfig {
                thermal: Some(ThermalModel::pentium_m()),
                ..ManagerConfig::pentium_m()
            },
        )
        .run(&trace, &PlatformConfig::pentium_m());
        let peak = baseline.peak_temperature_c.expect("thermal tracked");
        assert!(peak > 70.0, "baseline peak {peak}");
    }

    #[test]
    fn thermal_policy_bounds_temperature() {
        let trace = spec::benchmark("crafty_in")
            .unwrap()
            .with_length(800)
            .generate(1);
        let limit = 65.0;
        let report = thermal_manager(limit).run(&trace, &PlatformConfig::pentium_m());
        let peak = report.peak_temperature_c.expect("thermal tracked");
        assert!(
            peak <= limit + 0.5,
            "peak {peak} exceeded the {limit} C limit"
        );
        // Throttling happened: the run is slower than an equivalent
        // unmanaged one would be.
        assert!(report.dvfs_transitions > 0);
    }

    #[test]
    fn generous_limit_never_throttles_memory_bound_work() {
        // swim runs cool (memory-bound, low settings anyway).
        let trace = spec::benchmark("swim_in")
            .unwrap()
            .with_length(200)
            .generate(1);
        let report = thermal_manager(95.0).run(&trace, &PlatformConfig::pentium_m());
        let peak = report.peak_temperature_c.expect("tracked");
        assert!(peak < 70.0, "swim peak {peak}");
    }

    #[test]
    fn power_cap_bounds_average_power() {
        let trace = spec::benchmark("crafty_in")
            .unwrap()
            .with_length(300)
            .generate(1);
        let cap = 8.0;
        let policy = PowerCap::new(
            Gpht::new(GphtConfig::DEPLOYED),
            PowerEstimator::pentium_m(),
            cap,
        );
        let report = Manager::new(Box::new(policy), ManagerConfig::pentium_m())
            .run(&trace, &PlatformConfig::pentium_m());
        assert!(
            report.average_power_w() <= cap * 1.05,
            "avg power {:.2} exceeds the {cap} W cap",
            report.average_power_w()
        );
    }

    #[test]
    fn names_are_descriptive() {
        let t = ThermalAware::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
            PowerEstimator::pentium_m(),
            ThermalModel::pentium_m(),
            70.0,
        );
        assert_eq!(t.name(), "ThermalAware_70C(GPHT_8_128)");
        assert_eq!(t.limit_c(), 70.0);
        let c = PowerCap::new(
            Gpht::new(GphtConfig::DEPLOYED),
            PowerEstimator::pentium_m(),
            9.0,
        );
        assert_eq!(c.name(), "PowerCap_9W(GPHT_8_128)");
        assert_eq!(c.cap_w(), 9.0);
    }

    #[test]
    #[should_panic(expected = "thermal limit")]
    fn limit_below_ambient_rejected() {
        let _ = ThermalAware::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
            PowerEstimator::pentium_m(),
            ThermalModel::pentium_m(),
            20.0,
        );
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn zero_cap_rejected() {
        let _ = PowerCap::new(
            Gpht::new(GphtConfig::DEPLOYED),
            PowerEstimator::pentium_m(),
            0.0,
        );
    }
}
