//! Management policies: how the handler chooses the next DVFS setting.

use crate::table::TranslationTable;
use livephase_core::{Gpht, GphtConfig, LastValue, PhaseSample, Predictor};
use std::fmt;

/// Runtime feedback available to environment-aware policies at each PMI.
///
/// Plain power management needs only the phase sample; thermal management
/// and power capping (the paper's other named applications) additionally
/// read back platform state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Junction temperature at the interrupt, when the manager tracks a
    /// thermal model.
    pub temperature_c: Option<f64>,
    /// DVFS setting in effect during the elapsed interval.
    pub current_setting: usize,
    /// Average power of the elapsed interval, in watts.
    pub interval_power_w: f64,
}

/// A dynamic power-management policy, consulted once per PMI with the
/// observed sample of the elapsed interval; returns the DVFS setting index
/// to apply for the next interval.
pub trait Policy {
    /// Decides the next interval's DVFS setting.
    fn decide(&mut self, sample: PhaseSample) -> usize;

    /// Environment-aware variant; the default ignores the environment and
    /// defers to [`decide`](Self::decide). The manager always calls this
    /// method.
    fn decide_with_env(&mut self, sample: PhaseSample, env: &Environment) -> usize {
        let _ = env;
        self.decide(sample)
    }

    /// The phase the policy expects next (for prediction-accuracy
    /// accounting); `None` for policies that do not predict (baseline).
    fn predicted_phase(&self) -> Option<livephase_core::PhaseId>;

    /// Short display name, e.g. `GPHT_8_128`.
    fn name(&self) -> String;

    /// Clears accumulated state.
    fn reset(&mut self);
}

impl fmt::Debug for dyn Policy + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Policy({})", self.name())
    }
}

/// The unmanaged baseline: always run at the fastest setting. This is the
/// reference every result in Figures 11–13 is normalized against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Baseline;

impl Baseline {
    /// Creates the baseline policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Policy for Baseline {
    fn decide(&mut self, _sample: PhaseSample) -> usize {
        0
    }

    fn predicted_phase(&self) -> Option<livephase_core::PhaseId> {
        None
    }

    fn name(&self) -> String {
        "Baseline".to_owned()
    }

    fn reset(&mut self) {}
}

/// The reactive policy of prior work (Section 6.2): configure the next
/// interval for the *last observed* phase. Identical to proactive
/// management with a last-value predictor.
#[derive(Debug, Clone)]
pub struct Reactive {
    table: TranslationTable,
    last: LastValue,
}

impl Reactive {
    /// Creates a reactive policy over the given translation table.
    #[must_use]
    pub fn new(table: TranslationTable) -> Self {
        Self {
            table,
            last: LastValue::new(),
        }
    }
}

impl Policy for Reactive {
    fn decide(&mut self, sample: PhaseSample) -> usize {
        self.table.setting_for(self.last.next(sample))
    }

    fn predicted_phase(&self) -> Option<livephase_core::PhaseId> {
        Some(self.last.predict())
    }

    fn name(&self) -> String {
        "Reactive(LastValue)".to_owned()
    }

    fn reset(&mut self) {
        self.last.reset();
    }
}

/// The paper's proposal: configure the next interval for the *predicted*
/// next phase, using any [`Predictor`] (the deployed system uses a GPHT
/// with depth 8 and 128 PHT entries).
#[derive(Debug)]
pub struct Proactive<P> {
    predictor: P,
    table: TranslationTable,
}

impl Proactive<Gpht> {
    /// The deployed configuration: GPHT(8, 128) over the Table 2 mapping.
    #[must_use]
    pub fn gpht_deployed() -> Self {
        Self::new(
            Gpht::new(GphtConfig::DEPLOYED),
            TranslationTable::pentium_m(),
        )
    }
}

impl<P: Predictor> Proactive<P> {
    /// Creates a proactive policy from a predictor and a translation table.
    #[must_use]
    pub fn new(predictor: P, table: TranslationTable) -> Self {
        Self { predictor, table }
    }

    /// The underlying predictor.
    #[must_use]
    pub fn predictor(&self) -> &P {
        &self.predictor
    }
}

impl<P: Predictor> Policy for Proactive<P> {
    fn decide(&mut self, sample: PhaseSample) -> usize {
        self.table.setting_for(self.predictor.next(sample))
    }

    fn predicted_phase(&self) -> Option<livephase_core::PhaseId> {
        Some(self.predictor.predict())
    }

    fn name(&self) -> String {
        format!("Proactive({})", self.predictor.name())
    }

    fn reset(&mut self) {
        self.predictor.reset();
    }
}

/// A perfect-knowledge upper bound: replays the workload's *actual* phase
/// sequence, so every interval runs at the setting its phase deserves.
///
/// Not implementable on a real system — it exists to measure how much of
/// the oracle headroom the GPHT captures (an ablation the paper's
/// framework invites but does not run).
#[derive(Debug, Clone)]
pub struct Oracle {
    phases: Vec<livephase_core::PhaseId>,
    table: TranslationTable,
    cursor: usize,
}

impl Oracle {
    /// Builds the oracle for a workload under a phase map and table.
    #[must_use]
    pub fn from_trace(
        trace: &livephase_workloads::WorkloadTrace,
        map: &livephase_core::PhaseMap,
        table: TranslationTable,
    ) -> Self {
        let phases = trace.iter().map(|w| map.classify(w.mem_uop())).collect();
        Self {
            phases,
            table,
            cursor: 0,
        }
    }
}

impl Policy for Oracle {
    fn decide(&mut self, _sample: PhaseSample) -> usize {
        // At the PMI ending interval `cursor`, the next interval is
        // `cursor + 1`; past the end, hold the last known phase.
        let next = self
            .phases
            .get(self.cursor + 1)
            .or_else(|| self.phases.last())
            .copied()
            .unwrap_or(livephase_core::PhaseId::CPU_BOUND);
        self.cursor += 1;
        self.table.setting_for(next)
    }

    fn predicted_phase(&self) -> Option<livephase_core::PhaseId> {
        self.phases
            .get(self.cursor)
            .or_else(|| self.phases.last())
            .copied()
    }

    fn name(&self) -> String {
        "Oracle".to_owned()
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_core::PhaseId;

    fn sample(phase: u8) -> PhaseSample {
        PhaseSample::new(0.001 * f64::from(phase), PhaseId::new(phase))
    }

    #[test]
    fn baseline_always_full_speed() {
        let mut b = Baseline::new();
        assert_eq!(b.decide(sample(6)), 0);
        assert_eq!(b.decide(sample(1)), 0);
        assert_eq!(b.predicted_phase(), None);
        b.reset();
    }

    #[test]
    fn reactive_follows_last_phase() {
        let mut r = Reactive::new(TranslationTable::pentium_m());
        assert_eq!(r.decide(sample(6)), 5);
        assert_eq!(r.decide(sample(2)), 1);
        assert_eq!(r.predicted_phase().unwrap().get(), 2);
    }

    #[test]
    fn proactive_uses_prediction_not_observation() {
        // Periodic 1-6-1-6 stream: a GPHT learns to anticipate the flip,
        // so after observing 1 it requests the setting for 6.
        let mut p = Proactive::gpht_deployed();
        for _ in 0..100 {
            let _ = p.decide(sample(1));
            let _ = p.decide(sample(6));
        }
        let decision_after_one = p.decide(sample(1));
        assert_eq!(decision_after_one, 5, "anticipates the 6 that follows 1");
        let decision_after_six = p.decide(sample(6));
        assert_eq!(decision_after_six, 0, "anticipates the 1 that follows 6");
    }

    #[test]
    fn reactive_lags_on_the_same_stream() {
        let mut r = Reactive::new(TranslationTable::pentium_m());
        for _ in 0..100 {
            let _ = r.decide(sample(1));
            let _ = r.decide(sample(6));
        }
        assert_eq!(r.decide(sample(1)), 0, "reacts to the observed 1");
    }

    #[test]
    fn oracle_predicts_perfectly() {
        use livephase_pmsim::PlatformConfig;
        use livephase_workloads::spec;
        let trace = spec::benchmark("applu_in")
            .unwrap()
            .with_length(120)
            .generate(3);
        let map = livephase_core::PhaseMap::pentium_m();
        let oracle = Oracle::from_trace(&trace, &map, TranslationTable::pentium_m());
        let report = crate::manager::Manager::new(
            Box::new(oracle),
            crate::manager::ManagerConfig::pentium_m(),
        )
        .run(&trace, &PlatformConfig::pentium_m());
        assert_eq!(
            report.prediction.correct, report.prediction.total,
            "the oracle never mispredicts"
        );
        // And it dominates GPHT on EDP for the same workload.
        let baseline =
            crate::manager::Manager::baseline().run(&trace, &PlatformConfig::pentium_m());
        let gpht =
            crate::manager::Manager::gpht_deployed().run(&trace, &PlatformConfig::pentium_m());
        let oracle_edp = report.compare_to(&baseline).edp_improvement_pct();
        let gpht_edp = gpht.compare_to(&baseline).edp_improvement_pct();
        assert!(
            oracle_edp >= gpht_edp - 0.5,
            "oracle {oracle_edp:.1}% vs GPHT {gpht_edp:.1}%"
        );
    }

    #[test]
    fn names_and_reset() {
        let mut p = Proactive::gpht_deployed();
        assert_eq!(p.name(), "Proactive(GPHT_8_128)");
        let _ = p.decide(sample(3));
        p.reset();
        assert_eq!(p.predictor().history().len(), 0);
        assert_eq!(
            Reactive::new(TranslationTable::pentium_m()).name(),
            "Reactive(LastValue)"
        );
    }
}
