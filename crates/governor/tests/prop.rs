//! Property-based tests for the governor: translation tables, policies,
//! the conservative derivation and run comparisons.

use livephase_core::{PhaseId, PhaseSample};
use livephase_governor::{
    ConservativeDerivation, Manager, Policy, Proactive, Reactive, TranslationTable,
};
use livephase_pmsim::PlatformConfig;
use livephase_workloads::{registry, PhaseLevel, WorkloadTrace};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = TranslationTable> {
    proptest::collection::vec(0usize..6, 1..9).prop_map(|mut v| {
        v.sort_unstable();
        TranslationTable::new(v, 6).expect("sorted => monotonic")
    })
}

proptest! {
    /// Any monotone mapping yields monotone settings over phases, and
    /// clamping beyond the table returns the deepest setting.
    #[test]
    fn tables_are_monotone_and_clamping(table in arb_table()) {
        let mut prev = 0usize;
        for k in 1..=table.phase_count() {
            let s = table.setting_for(PhaseId::new(u8::try_from(k).unwrap()));
            prop_assert!(s >= prev);
            prev = s;
        }
        let beyond = table.setting_for(PhaseId::new(200));
        prop_assert_eq!(beyond, *table.settings().last().unwrap());
    }

    /// A reactive policy is pure table lookup of the observed phase.
    #[test]
    fn reactive_is_table_of_last(table in arb_table(), phases in proptest::collection::vec(1u8..=6, 1..50)) {
        let mut r = Reactive::new(table.clone());
        for &p in &phases {
            let got = r.decide(PhaseSample::new(0.01, PhaseId::new(p)));
            prop_assert_eq!(got, table.setting_for(PhaseId::new(p)));
        }
    }

    /// For any degradation target, the derived conservative configuration
    /// respects it for the reference behaviour across the whole axis.
    #[test]
    fn conservative_derivation_respects_any_target(target in 0.01f64..0.30, probe in 0.0f64..0.12) {
        let d = ConservativeDerivation::pentium_m();
        let (map, table) = d.derive(target);
        let setting = table.setting_for(map.classify(probe));
        prop_assert!(
            d.degradation(probe, setting) <= target + 1e-9,
            "m={probe}: setting {setting} degrades {}",
            d.degradation(probe, setting)
        );
    }

    /// Looser targets never produce strictly faster settings at any rate.
    #[test]
    fn conservative_targets_order_settings(probe in 0.0f64..0.12) {
        let d = ConservativeDerivation::pentium_m();
        let (m1, t1) = d.derive(0.03);
        let (m2, t2) = d.derive(0.10);
        let strict = t1.setting_for(m1.classify(probe));
        let loose = t2.setting_for(m2.classify(probe));
        prop_assert!(strict <= loose, "strict {strict} vs loose {loose} at {probe}");
    }

    /// A proactive policy with any predictor only ever emits settings from
    /// its table.
    #[test]
    fn proactive_stays_in_table(table in arb_table(), phases in proptest::collection::vec(1u8..=6, 1..60)) {
        let mut p = Proactive::new(
            livephase_core::Gpht::new(livephase_core::GphtConfig::DEPLOYED),
            table.clone(),
        );
        for &ph in &phases {
            let got = p.decide(PhaseSample::new(f64::from(ph) * 0.004, PhaseId::new(ph)));
            prop_assert!(table.settings().contains(&got));
        }
    }

    /// For any constant workload, baseline and managed runs retire the
    /// same work and the managed run's average power never exceeds the
    /// baseline's.
    #[test]
    fn constant_workloads_never_cost_power(mem in 0.0f64..0.08, len in 5usize..40) {
        let level = PhaseLevel::reference_family(mem);
        let work = level.interval(100_000_000, 1.25, mem);
        let trace = WorkloadTrace::new("const", vec![work; len]);
        let platform = PlatformConfig::pentium_m();
        let base = Manager::baseline().run(&trace, &platform);
        let managed = Manager::gpht_deployed().run(&trace, &platform);
        prop_assert_eq!(base.totals.instructions, managed.totals.instructions);
        prop_assert!(managed.average_power_w() <= base.average_power_w() + 1e-9);
    }

    /// A min-dwell gate can never emit more than one setting change per
    /// `min_dwell` decisions, on any request stream.
    #[test]
    fn min_dwell_bounds_the_switch_rate(
        phases in proptest::collection::vec(1u8..=6, 10..200),
        dwell in 1u32..8,
    ) {
        use livephase_governor::MinDwell;
        let mut p = MinDwell::new(
            Reactive::new(TranslationTable::pentium_m()),
            dwell,
        );
        let mut last = None;
        let mut switches = 0u32;
        for &ph in &phases {
            let got = p.decide(PhaseSample::new(0.01, PhaseId::new(ph)));
            if last.is_some_and(|l| l != got) {
                switches += 1;
            }
            last = Some(got);
        }
        let bound = (phases.len() as u32).div_ceil(dwell);
        prop_assert!(
            switches <= bound,
            "{switches} switches > bound {bound} at dwell {dwell}"
        );
    }

    /// Adaptive sampling never loses or duplicates work, whatever the
    /// multiplier cap, and never takes more interrupts than fixed sampling.
    #[test]
    fn adaptive_sampling_conserves_work(
        idx in 0usize..33,
        max_multiplier in 1u64..8,
        len in 20usize..80,
    ) {
        use livephase_governor::{AdaptiveSampling, ManagerConfig};
        let spec = registry().swap_remove(idx).with_length(len);
        let trace = spec.generate(7);
        let platform = PlatformConfig::pentium_m();
        let fixed = Manager::gpht_deployed().run(&trace, &platform);
        let adaptive = Manager::new(
            Box::new(livephase_governor::Proactive::gpht_deployed()),
            ManagerConfig {
                adaptive_sampling: Some(AdaptiveSampling {
                    base_uops: 100_000_000,
                    max_multiplier,
                }),
                ..ManagerConfig::pentium_m()
            },
        )
        .run(&trace, &platform);
        prop_assert_eq!(adaptive.totals.uops, fixed.totals.uops);
        prop_assert_eq!(adaptive.totals.instructions, fixed.totals.instructions);
        prop_assert!(adaptive.intervals.len() <= fixed.intervals.len());
    }

    /// The thermal-aware policy respects any feasible junction limit on
    /// any benchmark (the platform's coolest steady state bounds
    /// feasibility from below).
    #[test]
    fn thermal_policy_respects_any_feasible_limit(
        idx in 0usize..33,
        limit in 55.0f64..90.0,
    ) {
        use livephase_core::{Gpht, GphtConfig};
        use livephase_governor::{ManagerConfig, PowerEstimator, ThermalAware};
        use livephase_pmsim::ThermalModel;
        let spec = registry().swap_remove(idx).with_length(120);
        let trace = spec.generate(3);
        let report = Manager::new(
            Box::new(ThermalAware::new(
                Gpht::new(GphtConfig::DEPLOYED),
                TranslationTable::pentium_m(),
                PowerEstimator::pentium_m(),
                ThermalModel::pentium_m(),
                limit,
            )),
            ManagerConfig {
                thermal: Some(ThermalModel::pentium_m()),
                ..ManagerConfig::pentium_m()
            },
        )
        .run(&trace, &PlatformConfig::pentium_m());
        let peak = report.peak_temperature_c.expect("tracked");
        prop_assert!(
            peak <= limit + 1.0,
            "peak {peak:.1} C exceeded limit {limit:.1} C on {}",
            trace.name()
        );
    }

    /// Reports normalize consistently: comparing a run to itself is
    /// neutral in every metric, for any benchmark.
    #[test]
    fn self_comparison_is_neutral(idx in 0usize..33) {
        let spec = registry().swap_remove(idx).with_length(20);
        let trace = spec.generate(1);
        let r = Manager::reactive().run(&trace, &PlatformConfig::pentium_m());
        let c = r.compare_to(&r);
        prop_assert!((c.bips_ratio - 1.0).abs() < 1e-12);
        prop_assert!((c.edp_ratio - 1.0).abs() < 1e-12);
        prop_assert!(c.edp_improvement_pct().abs() < 1e-9);
    }
}
