//! Golden test pinning the exposition text format byte-for-byte.
//!
//! Scrapers (ci.sh, operators' Prometheus configs) parse this format
//! mechanically; any change to headers, label rendering, bucket lines
//! or ordering must update this expectation deliberately.

use livephase_telemetry::Registry;

#[test]
fn exposition_format_is_pinned() {
    let r = Registry::new();
    r.counter(
        "serve_connections_total",
        "Connections accepted since start.",
        &[],
    )
    .add(3);
    r.gauge(
        "serve_shard_queue_depth",
        "Messages waiting.",
        &[("shard", "0")],
    )
    .set(2);
    r.gauge(
        "serve_shard_queue_depth",
        "Messages waiting.",
        &[("shard", "1")],
    )
    .set(-1);
    let h = r.histogram(
        "serve_frame_decode_us",
        "Frame decode latency (µs).",
        &[("shard", "0")],
    );
    h.record(3);
    h.record(3);
    h.record(40);
    h.record(1000);

    let expected = "\
# HELP serve_connections_total Connections accepted since start.
# TYPE serve_connections_total counter
serve_connections_total 3
# HELP serve_frame_decode_us Frame decode latency (µs).
# TYPE serve_frame_decode_us histogram
serve_frame_decode_us_bucket{shard=\"0\",le=\"3\"} 2
serve_frame_decode_us_bucket{shard=\"0\",le=\"40\"} 3
serve_frame_decode_us_bucket{shard=\"0\",le=\"1007\"} 4
serve_frame_decode_us_bucket{shard=\"0\",le=\"+Inf\"} 4
serve_frame_decode_us_sum{shard=\"0\"} 1046
serve_frame_decode_us_count{shard=\"0\"} 4
serve_frame_decode_us_overflow{shard=\"0\"} 0
# HELP serve_shard_queue_depth Messages waiting.
# TYPE serve_shard_queue_depth gauge
serve_shard_queue_depth{shard=\"0\"} 2
serve_shard_queue_depth{shard=\"1\"} -1
";
    assert_eq!(r.render(), expected);
}
