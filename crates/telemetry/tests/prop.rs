//! Property tests for the histogram: the fixed layout makes merging
//! exact and associative, quantile estimates stay within the bucket
//! relative-error bound, and what is recorded is what renders.

use livephase_telemetry::histogram::{bucket_bounds, bucket_index, BUCKETS, SUB_COUNT};
use livephase_telemetry::{Histogram, Registry};
use proptest::collection;
use proptest::prelude::*;

/// Observation streams spanning every octave, not just small ints.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    collection::vec(
        prop_oneof![
            0u64..64,
            64u64..100_000,
            1u64 << 20..1u64 << 40,
            Just(u64::MAX),
            0u64..=u64::MAX,
        ],
        0usize..200,
    )
}

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn assert_same(a: &Histogram, b: &Histogram) {
    assert_eq!(a.count(), b.count());
    assert_eq!(a.sum(), b.sum());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(a.quantile(q), b.quantile(q));
    }
}

proptest! {
    /// Every value lands in a bucket that contains it, and the bucket
    /// is narrow enough for the advertised 1/SUB_COUNT relative error.
    #[test]
    fn bucket_layout_contains_and_bounds_error(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lower, upper) = bucket_bounds(i);
        prop_assert!(lower <= v && v <= upper);
        prop_assert!(upper - lower <= v / SUB_COUNT);
    }

    /// Merging is associative and order-independent: any bracketing of
    /// the three streams produces the same histogram as recording the
    /// concatenation directly.
    #[test]
    fn merge_is_associative(
        xs in arb_values(),
        ys in arb_values(),
        zs in arb_values(),
    ) {
        // (xs ∪ ys) ∪ zs
        let left = hist_of(&xs);
        left.merge_from(&hist_of(&ys));
        left.merge_from(&hist_of(&zs));
        // xs ∪ (ys ∪ zs)
        let rhs = hist_of(&ys);
        rhs.merge_from(&hist_of(&zs));
        let right = hist_of(&xs);
        right.merge_from(&rhs);
        // direct recording of the concatenation
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let direct = hist_of(&all);

        assert_same(&left, &right);
        assert_same(&left, &direct);
    }

    /// Quantile estimates never undershoot the true order statistic and
    /// overshoot by at most the bucket width: `t <= est <= t + t/32`.
    #[test]
    fn quantiles_are_within_relative_error(values in arb_values(), q in 0.0f64..=1.0) {
        prop_assume!(!values.is_empty());
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q).expect("non-empty");
        prop_assert!(est >= truth, "estimate {est} under truth {truth}");
        prop_assert!(
            est <= truth.saturating_add(truth / SUB_COUNT),
            "estimate {est} past error bound for truth {truth}"
        );
    }

    /// Record → render round trip: the exposition text reports exactly
    /// the recorded count and sum, and its +Inf bucket equals the count.
    #[test]
    fn recorded_streams_render_faithfully(values in arb_values()) {
        let r = Registry::new();
        let h = r.histogram("rt_us", "Round trip.", &[]);
        let mut sum = 0u64;
        for &v in &values {
            h.record(v);
            sum = sum.wrapping_add(v);
        }
        let text = r.render();
        prop_assert!(text.contains("# TYPE rt_us histogram"));
        prop_assert!(text.contains(&format!("rt_us_bucket{{le=\"+Inf\"}} {}", values.len())));
        prop_assert!(text.contains(&format!("rt_us_sum {sum}")));
        prop_assert!(text.contains(&format!("rt_us_count {}", values.len())));
        // Cumulative bucket lines are non-decreasing and end at count.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("rt_us_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(n >= last, "cumulative counts decreased: {line}");
            last = n;
        }
        prop_assert_eq!(last, values.len() as u64);
    }
}
