//! Zero-dependency observability for the livephase stack.
//!
//! The paper's kernel module lives or dies by observing without
//! perturbing: the PMI handler budget is microseconds, so the
//! monitoring system's *own* telemetry has to be cheaper still. This
//! crate provides that instrumentation layer for the user-space
//! reproduction, std-only:
//!
//! - [`registry`] — a process-global metrics [`Registry`] of atomic
//!   [`Counter`]s, [`Gauge`]s and log-linear [`Histogram`]s. Handles
//!   are `Arc`s created once; every subsequent record is a relaxed
//!   atomic operation — no lock, no allocation — so instruments sit
//!   directly on the per-PMI and per-frame hot paths.
//! - [`histogram`] — the fixed log-linear bucket layout: exact below
//!   32, 32 linear sub-buckets per octave above, quantile estimates
//!   within a 1/32 relative-error bound, histograms mergeable by
//!   bucket-wise addition.
//! - [`trace`] — leveled structured events ([`trace_event!`],
//!   [`timed_span!`]) through a bounded ring buffer with human and
//!   JSON-lines stdout sinks; the default [`Sink::Null`] keeps library
//!   consumers silent.
//! - Prometheus-style text exposition via [`Registry::render`], which
//!   `livephase-serve` surfaces over the wire protocol and
//!   `livephase metrics <addr>` scrapes from the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod histogram;
pub mod registry;
pub mod scrape;
pub mod trace;

pub use histogram::Histogram;
pub use registry::{global, Counter, Gauge, Registry};
pub use trace::{now_unix_ms, record_span, tracer, Event, Level, Sink, Tracer};
