//! The process-global metrics registry and the Prometheus-style text
//! exposition rendered from it.
//!
//! Instruments are created (or looked up) once through the registry and
//! held as `Arc` handles; every subsequent record is a lock-free atomic
//! operation on the handle. The registry lock is only taken on
//! instrument creation and on render, never on the hot path.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// A monotonically increasing counter. Hot path: one relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value. Hot path: one relaxed atomic op.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Label set: sorted `(key, value)` pairs, part of a series' identity.
type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    series: BTreeMap<Labels, Instrument>,
}

/// A collection of named metric families, each a set of labeled series.
///
/// Library code should use the process-global registry via
/// [`global`]; a fresh `Registry` exists for tests that need isolation.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.read().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("Registry")
            .field("families", &families.len())
            .finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn normalize_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_name(k), "invalid label name {k:?}");
            ((*k).to_owned(), (*v).to_owned())
        })
        .collect();
    out.sort();
    out
}

impl Registry {
    /// Creates an empty registry (mostly for tests; production code
    /// uses [`global`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        get: impl Fn(&Instrument) -> Option<Instrument>,
    ) -> Instrument {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = normalize_labels(labels);
        // Fast path: series already exists.
        {
            // Poisoning cannot corrupt the map (writers only insert), so a
            // poisoned lock is recovered rather than propagated.
            let families = self.families.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(found) = families
                .get(name)
                .and_then(|fam| fam.series.get(&labels))
                .map(|ins| {
                    get(ins).unwrap_or_else(|| {
                        // lint:allow(no-panic-path): documented registration-time contract —
                        // re-registering a name as a different kind is a programming error
                        // caught at startup, never reachable from the sample path.
                        panic!("metric {name} already registered as a {}", ins.kind())
                    })
                })
            {
                return found;
            }
        }
        let mut families = self
            .families
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        let ins = family.series.entry(labels).or_insert_with(make);
        // lint:allow(no-panic-path): documented registration-time contract (see above)
        get(ins).unwrap_or_else(|| panic!("metric {name} already registered as a {}", ins.kind()))
    }

    /// Returns (creating on first use) the counter series `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different instrument kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::default())),
            |ins| match ins {
                Instrument::Counter(c) => Some(Instrument::Counter(Arc::clone(c))),
                _ => None,
            },
        ) {
            Instrument::Counter(c) => c,
            _ => unreachable!("getter only returns counters"),
        }
    }

    /// Returns (creating on first use) the gauge series `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different instrument kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(
            name,
            help,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::default())),
            |ins| match ins {
                Instrument::Gauge(g) => Some(Instrument::Gauge(Arc::clone(g))),
                _ => None,
            },
        ) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("getter only returns gauges"),
        }
    }

    /// Returns (creating on first use) the histogram series
    /// `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name or is already
    /// registered as a different instrument kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.instrument(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |ins| match ins {
                Instrument::Histogram(h) => Some(Instrument::Histogram(Arc::clone(h))),
                _ => None,
            },
        ) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("getter only returns histograms"),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` headers, one line per series;
    /// histograms as cumulative `_bucket{le=...}` lines over non-empty
    /// buckets plus `+Inf`, `_sum` and `_count`). Families and series
    /// render in lexicographic order, so output is deterministic for a
    /// given registry state.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let families = self.families.read().unwrap_or_else(PoisonError::into_inner);
        for (name, family) in families.iter() {
            let kind = family
                .series
                .values()
                .next()
                .map_or("counter", Instrument::kind);
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, ins) in &family.series {
                match ins {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), g.get());
                    }
                    Instrument::Histogram(h) => {
                        let mut cumulative = 0u64;
                        h.for_each_nonempty(|upper, n| {
                            cumulative += n;
                            let le = upper.to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, &[("le", &le)]),
                            );
                        });
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, &[("le", "+Inf")]),
                            h.count(),
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, &[]), h.sum());
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, &[]),
                            h.count(),
                        );
                        // Saturation cell: observations clamped into the
                        // top bucket. Always rendered (not just when
                        // nonzero) so collectors and the ci.sh greps see
                        // a stable series and a zero reads as "quantiles
                        // near the cap are trustworthy".
                        let _ = writeln!(
                            out,
                            "{name}_overflow{} {}",
                            render_labels(labels, &[]),
                            h.overflow(),
                        );
                    }
                }
            }
        }
        out
    }

    /// Visits every histogram series as `(family name, labels,
    /// histogram)`, in the same lexicographic order `render` uses. This
    /// is the machine-facing counterpart of the text exposition — the
    /// bench profiler renders its hot-path table from it without
    /// parsing text.
    pub fn visit_histograms(&self, mut f: impl FnMut(&str, &[(String, String)], &Histogram)) {
        let families = self.families.read().unwrap_or_else(PoisonError::into_inner);
        for (name, family) in families.iter() {
            for (labels, ins) in &family.series {
                if let Instrument::Histogram(h) = ins {
                    f(name, labels, h);
                }
            }
        }
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` from the series labels plus `extra` pairs
/// (used for `le`); empty when there are no labels at all.
fn render_labels(labels: &Labels, extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))),
    );
    format!("{{{}}}", parts.join(","))
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry all instrumented crates share. Created
/// on first use; never torn down.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("requests_total", "Requests served.", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Second lookup returns the same underlying series.
        let c2 = r.counter("requests_total", "Requests served.", &[]);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("queue_depth", "Messages waiting.", &[("shard", "0")]);
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x_total", "", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "", &[]);
        let _ = r.gauge("m", "", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = Registry::new().counter("9starts-with-digit", "", &[]);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let r = Registry::new();
        r.counter("b_total", "Bees.", &[("hive", "7")]).add(3);
        r.gauge("a_depth", "Depth.", &[]).set(-2);
        let h = r.histogram("lat_us", "Latency.", &[]);
        h.record(1);
        h.record(100);
        let text = r.render();
        let again = r.render();
        assert_eq!(text, again, "render is deterministic");
        assert!(text.contains("# TYPE a_depth gauge"));
        assert!(text.contains("a_depth -2\n"));
        assert!(text.contains("# HELP b_total Bees.\n"));
        assert!(text.contains("b_total{hive=\"7\"} 3\n"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 101\n"));
        assert!(text.contains("lat_us_count 2\n"));
        assert!(
            text.contains("lat_us_overflow 0\n"),
            "the saturation cell renders even when zero"
        );
        h.record_saturating(u128::MAX);
        assert!(r.render().contains("lat_us_overflow 1\n"));
        // Families render sorted: a_depth before b_total before lat_us.
        let a = text.find("a_depth").unwrap();
        let b = text.find("b_total").unwrap();
        let l = text.find("lat_us").unwrap();
        assert!(a < b && b < l);
    }

    #[test]
    fn visit_histograms_sees_every_series_in_render_order() {
        let r = Registry::new();
        r.counter("skip_total", "", &[]).inc();
        r.histogram("b_us", "", &[]).record(9);
        r.histogram("a_us", "", &[("shard", "1")]).record(4);
        let mut seen = Vec::new();
        r.visit_histograms(|name, labels, h| {
            seen.push((name.to_owned(), labels.to_vec(), h.count()));
        });
        assert_eq!(seen.len(), 2, "counters are not visited");
        assert_eq!(seen[0].0, "a_us");
        assert_eq!(seen[0].1, vec![("shard".to_owned(), "1".to_owned())]);
        assert_eq!(seen[1], ("b_us".to_owned(), Vec::new(), 1));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("telemetry_selftest_total", "", &[]);
        c.inc();
        let before = c.get();
        global().counter("telemetry_selftest_total", "", &[]).inc();
        assert_eq!(c.get(), before + 1);
    }
}
