//! A log-linear histogram with a fixed, process-wide bucket layout.
//!
//! The layout is the classic HdrHistogram/DDSketch compromise: values
//! below [`SUB_COUNT`] get one bucket each (exact), and every octave
//! above that is split into [`SUB_COUNT`] linear sub-buckets, so the
//! bucket width is always at most `value / SUB_COUNT`. That bounds the
//! relative error of any quantile estimate at `1 / SUB_COUNT` (3.125%)
//! while keeping `record` a single array index plus one atomic add —
//! no allocation, no lock, no resizing, safe for the per-PMI and
//! per-frame hot paths.
//!
//! Because the layout is fixed, two histograms are always mergeable by
//! bucket-wise addition, which is what lets per-connection and
//! per-shard recorders combine into one report.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave; also the denominator of the relative
/// error bound (a recorded value and its bucket upper bound differ by
/// at most `value / SUB_COUNT`).
pub const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total bucket count: one per value below `SUB_COUNT`, then
/// `SUB_COUNT` per octave for the remaining `63 - SUB_BITS + 1` octaves
/// of the u64 range.
pub const BUCKETS: usize = (SUB_COUNT as usize) + (64 - SUB_BITS as usize) * (SUB_COUNT as usize);

/// Index of the bucket holding `value`. Total over all of u64.
#[must_use]
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        // value < SUB_COUNT = 32, so the conversion cannot fail.
        return usize::try_from(value).unwrap_or(0);
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS here
    let octave = msb - SUB_BITS;
    let offset = (value >> octave) - SUB_COUNT; // 0..SUB_COUNT
                                                // The index is at most BUCKETS - 1 (< 2^12), so it always fits usize.
    usize::try_from(SUB_COUNT + u64::from(octave) * SUB_COUNT + offset).unwrap_or(BUCKETS - 1)
}

/// Inclusive `[lower, upper]` value range covered by bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    let i = index as u64;
    if i < SUB_COUNT {
        return (i, i);
    }
    let octave = (i - SUB_COUNT) / SUB_COUNT;
    let offset = (i - SUB_COUNT) % SUB_COUNT;
    // index < BUCKETS bounds octave below 64, so the conversion cannot fail.
    let width_log2 = u32::try_from(octave).unwrap_or(63);
    let lower = (SUB_COUNT + offset) << width_log2;
    let upper = lower + ((1u64 << width_log2) - 1);
    (lower, upper)
}

/// A concurrent log-linear histogram of `u64` observations.
///
/// All methods take `&self`; recording is a single relaxed atomic add
/// on a fixed-size array. Snapshot-style reads (`count`, `quantile`,
/// `render`) are only as consistent as relaxed loads allow, which is
/// fine for monitoring.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Observations that arrived wider than `u64` and were clamped into
    /// the top bucket by [`record_saturating`](Self::record_saturating).
    /// Kept separate from the buckets so saturation is visible: a
    /// nonzero cell means quantile estimates near the cap undercount
    /// the true tail and must not be trusted blindly.
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram. Allocates its full (fixed) bucket
    /// array up front — roughly 15 KiB — so recording never allocates.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec built with BUCKETS elements"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// Records one observation. Hot path: one index computation, three
    /// relaxed atomic RMWs, and two relaxed loads — the min/max RMWs
    /// are elided once the extremes stabilize (see
    /// [`update_extremes`](Self::update_extremes)). No branch allocates
    /// or locks.
    #[inline]
    pub fn record(&self, value: u64) {
        // lint:allow(no-panic-path): bucket_index is total over u64 and < BUCKETS
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.update_extremes(value);
    }

    /// Folds `value` into `min`/`max`, paying an RMW only when the
    /// extreme would actually move. `min` is monotonically
    /// non-increasing, so a stale loaded value only over-approximates:
    /// when `value >= loaded`, the true min is already `<= loaded <=
    /// value` and the `fetch_min` would be a no-op — skipping it is
    /// exact, not approximate. Symmetrically for `max`. In steady state
    /// the extremes stabilize after the first few observations and both
    /// RMWs vanish from the hot path.
    #[inline]
    fn update_extremes(&self, value: u64) {
        if value < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records `n` observations of the same value in one swing — at
    /// most five relaxed atomic RMWs total, however large `n` is. Used
    /// by batch consumers (a shard draining its queue) that attribute
    /// one amortized value to every element of the batch.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        // lint:allow(no-panic-path): bucket_index is total over u64 and < BUCKETS
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.update_extremes(value);
    }

    /// Records an observation that may be wider than the histogram's
    /// `u64` domain (durations in microseconds arrive as `u128`).
    /// Values that fit are recorded exactly; values past `u64::MAX`
    /// are clamped into the top bucket **and counted** in the
    /// [`overflow`](Self::overflow) cell, so saturation is never
    /// silent. This replaces the old
    /// `u64::try_from(x).unwrap_or(u64::MAX)` idiom at call sites,
    /// which recorded the same clamped value but left no trace that
    /// clamping happened.
    #[inline]
    pub fn record_saturating(&self, value: u128) {
        match u64::try_from(value) {
            Ok(v) => self.record(v),
            Err(_) => {
                self.overflow.fetch_add(1, Ordering::Relaxed);
                self.record(u64::MAX);
            }
        }
    }

    /// Bulk counterpart of [`record_saturating`](Self::record_saturating):
    /// `n` observations of one possibly-wider-than-`u64` value. A
    /// clamped value counts **`n`** overflows — every one of the `n`
    /// attributed observations is individually untrustworthy near the
    /// cap.
    #[inline]
    pub fn record_n_saturating(&self, value: u128, n: u64) {
        match u64::try_from(value) {
            Ok(v) => self.record_n(v, n),
            Err(_) => {
                self.overflow.fetch_add(n, Ordering::Relaxed);
                self.record_n(u64::MAX, n);
            }
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Observations clamped into the top bucket because they exceeded
    /// the `u64` domain (see [`record_saturating`](Self::record_saturating)).
    /// Rendered as the `_overflow` series so scrapes can flag
    /// untrustworthy near-cap quantiles.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded observation, exact; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded observation, exact; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// distribution, or `None` when empty.
    ///
    /// The estimate is the upper bound of the bucket holding the
    /// rank-`ceil(q * count)` observation, clamped to the exact
    /// recorded max, so for a true value `t` the estimate `e`
    /// satisfies `t <= e <= t + t / SUB_COUNT`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(bucket.load(Ordering::Relaxed));
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return Some(upper.min(self.max.load(Ordering::Relaxed)));
            }
        }
        // Racy concurrent records can leave rank past the scanned total.
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Adds every bucket of `other` into `self`. Both histograms share
    /// the fixed global layout, so merging is exact: the merged counts
    /// equal a histogram that had recorded both streams directly.
    pub fn merge_from(&self, other: &Self) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.overflow
            .fetch_add(other.overflow.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Visits every non-empty bucket as `(upper_bound, count)`, in
    /// ascending bucket order. This is the exposition renderer's view.
    pub fn for_each_nonempty(&self, mut f: impl FnMut(u64, u64)) {
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n != 0 {
                let (_, upper) = bucket_bounds(i);
                f(upper, n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_n_is_n_records_in_one_swing() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..7 {
            a.record(42);
        }
        a.record(9);
        b.record_n(42, 7);
        b.record_n(9, 1);
        b.record_n(1_000, 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.quantile(1.0), b.quantile(1.0));
    }

    #[test]
    fn layout_is_total_and_ordered() {
        // Every index maps into range, bounds tile the u64 line.
        let mut prev_upper: Option<u64> = None;
        for i in 0..BUCKETS {
            let (lower, upper) = bucket_bounds(i);
            assert!(lower <= upper, "bucket {i}");
            if let Some(p) = prev_upper {
                assert_eq!(lower, p.wrapping_add(1), "bucket {i} not contiguous");
            }
            prev_upper = Some(upper);
        }
        assert_eq!(prev_upper, Some(u64::MAX), "layout covers all of u64");
    }

    #[test]
    fn values_land_in_their_own_bucket() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let (lower, upper) = bucket_bounds(i);
            assert!(lower <= v && v <= upper, "value {v} bucket {i}");
            // Relative error bound: bucket width <= value / SUB_COUNT.
            assert!(upper - lower <= v / SUB_COUNT, "value {v} width too wide");
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap();
        assert!((500..=516).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(1000), "p100 is the exact max");
    }

    #[test]
    fn saturation_is_counted_not_silent() {
        let h = Histogram::new();
        h.record_saturating(7); // fits: exact, no overflow
        h.record_saturating(u128::from(u64::MAX)); // top of the domain, still exact
        assert_eq!(h.overflow(), 0, "in-domain values never count as overflow");
        h.record_saturating(u128::from(u64::MAX) + 1);
        h.record_saturating(u128::MAX);
        assert_eq!(h.overflow(), 2, "clamped values are counted");
        assert_eq!(h.count(), 4, "clamped values still land in the top bucket");
        assert_eq!(h.max(), Some(u64::MAX));
        // The regression this guards against: before the overflow cell,
        // a clamped record was indistinguishable from a genuine
        // u64::MAX observation.
        let quiet = Histogram::new();
        quiet.record(u64::MAX);
        assert_eq!(quiet.overflow(), 0);
    }

    #[test]
    fn merge_carries_overflow() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_saturating(u128::MAX);
        b.record_saturating(u128::MAX);
        b.record_saturating(3);
        a.merge_from(&b);
        assert_eq!(a.overflow(), 2);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn extremes_track_through_the_elided_fast_path() {
        // Monotone runs in both directions force the slow path every
        // record; a constant run afterwards must take only the elided
        // fast path and leave the extremes untouched.
        let h = Histogram::new();
        for v in (1..=100u64).rev() {
            h.record(v); // each is a new min
        }
        for v in 101..=200u64 {
            h.record(v); // each is a new max
        }
        for _ in 0..1000 {
            h.record(150); // neither extreme moves
        }
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(200));
        let n = Histogram::new();
        n.record_n(7, 3);
        n.record_n(7, 5); // fast path for both extremes
        assert_eq!(n.min(), Some(7));
        assert_eq!(n.max(), Some(7));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn merge_equals_direct_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let direct = Histogram::new();
        for v in [3u64, 77, 1 << 20, 5] {
            a.record(v);
            direct.record(v);
        }
        for v in [9u64, 1 << 33, 77] {
            b.record(v);
            direct.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), direct.count());
        assert_eq!(a.sum(), direct.sum());
        assert_eq!(a.max(), direct.max());
        assert_eq!(a.min(), direct.min());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), direct.quantile(q), "quantile {q}");
        }
    }
}
