//! Structured, leveled event tracing with a bounded in-memory ring
//! buffer and pluggable stdout sinks.
//!
//! Events below the configured level are filtered by one relaxed atomic
//! load before any field is formatted. Accepted events go two places:
//! the active sink (human-readable lines or JSON-lines, for operators
//! and `ci.sh`; the default [`Sink::Null`] keeps library users silent),
//! and a fixed-capacity ring buffer the process can interrogate after
//! the fact. The ring is claimed by an atomic cursor and written under
//! per-slot `try_lock`s, so a slow reader can never block an emitter —
//! under contention an event is counted as dropped instead.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
// lint:allow(determinism): wall-clock only stamps trace events; nothing decision-
// relevant ever reads it back.
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Fine-grained diagnostic detail.
    Trace = 0,
    /// Debug-level detail.
    Debug = 1,
    /// Normal operational messages.
    Info = 2,
    /// Something surprising but survivable.
    Warn = 3,
    /// A failure the process observed.
    Error = 4,
}

impl Level {
    /// The fixed uppercase name (`TRACE` .. `ERROR`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// Where accepted events are written, besides the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Sink {
    /// Ring buffer only; nothing is printed. The library default.
    Null = 0,
    /// One human-readable line per event on stdout.
    Human = 1,
    /// One JSON object per line on stdout, for mechanical consumers.
    Json = 2,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Milliseconds since the Unix epoch when the event was emitted.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (e.g. `serve::server`).
    pub target: &'static str,
    /// The human-readable message.
    pub message: String,
    /// Structured `(key, value)` fields.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// Renders the event as a single human-readable line.
    #[must_use]
    pub fn to_human(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "[{:>5}] {} {}",
            self.level.as_str(),
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            let _ = write!(line, " {k}={v}");
        }
        line
    }

    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut line = format!(
            "{{\"ts_ms\":{},\"level\":\"{}\",\"target\":\"{}\",\"message\":\"{}\"",
            self.unix_ms,
            self.level.as_str(),
            json_escape(self.target),
            json_escape(&self.message),
        );
        for (k, v) in &self.fields {
            let _ = write!(line, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        line.push('}');
        line
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Number of events the ring buffer retains.
pub const RING_CAPACITY: usize = 1024;

/// The process-global tracer: level filter, sink selection, ring buffer.
pub struct Tracer {
    level: AtomicU8,
    sink: AtomicU8,
    cursor: AtomicU64,
    dropped: AtomicU64,
    ring: Vec<Mutex<Option<(u64, Event)>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("level", &self.level())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Tracer {
    fn new() -> Self {
        Self {
            level: AtomicU8::new(Level::Info as u8),
            sink: AtomicU8::new(Sink::Null as u8),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The minimum level currently accepted.
    #[must_use]
    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Sets the minimum accepted level.
    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// Selects where accepted events are printed.
    pub fn set_sink(&self, sink: Sink) {
        self.sink.store(sink as u8, Ordering::Relaxed);
    }

    /// Whether an event at `level` would currently be accepted. This is
    /// the only check the macros make before formatting fields, so a
    /// filtered event costs one atomic load.
    #[inline]
    #[must_use]
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 >= self.level.load(Ordering::Relaxed)
    }

    /// Events lost to ring-slot contention since process start.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Emits a fully-formed event: prints it to the active sink and
    /// stores it in the ring buffer. Never blocks on the ring — a
    /// contended slot increments the dropped counter instead.
    pub fn emit(&self, event: Event) {
        if !self.enabled(event.level) {
            return;
        }
        match self.sink.load(Ordering::Relaxed) {
            s if s == Sink::Human as u8 => println!("{}", event.to_human()),
            s if s == Sink::Json as u8 => println!("{}", event.to_json()),
            _ => {}
        }
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = usize::try_from(seq).unwrap_or(usize::MAX) % RING_CAPACITY;
        // lint:allow(no-panic-path): slot < RING_CAPACITY = ring.len() by the modulo
        match self.ring[slot].try_lock() {
            Ok(mut guard) => *guard = Some((seq, event)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The most recent `n` retained events, oldest first. Slots being
    /// concurrently written are skipped rather than waited on.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let mut entries: Vec<(u64, Event)> = self
            .ring
            .iter()
            .filter_map(|slot| slot.try_lock().ok().and_then(|guard| guard.clone()))
            .collect();
        entries.sort_by_key(|(seq, _)| *seq);
        let skip = entries.len().saturating_sub(n);
        entries.into_iter().skip(skip).map(|(_, e)| e).collect()
    }
}

static TRACER: std::sync::OnceLock<Tracer> = std::sync::OnceLock::new();

/// The process-global tracer the macros emit through.
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(Tracer::new)
}

/// Milliseconds since the Unix epoch, saturating at zero on clock skew.
#[must_use]
pub fn now_unix_ms() -> u64 {
    // lint:allow(determinism): event timestamps are exposition-only metadata
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Emits one structured event through the global tracer.
///
/// ```
/// use livephase_telemetry::{trace_event, Level};
/// trace_event!(Level::Info, "serve::server", "listening", addr = "127.0.0.1:9");
/// ```
///
/// Field values are formatted with `Display` only when the level is
/// enabled; a filtered call costs a single atomic load.
#[macro_export]
macro_rules! trace_event {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let tracer = $crate::tracer();
        if tracer.enabled($level) {
            tracer.emit($crate::Event {
                unix_ms: $crate::now_unix_ms(),
                level: $level,
                target: $target,
                message: ::std::string::String::from($msg),
                fields: ::std::vec![
                    $((stringify!($key), ::std::format!("{}", $value)),)*
                ],
            });
        }
    }};
}

/// Records one completed [`timed_span!`] duration into the
/// process-global `span_elapsed_us` histogram, labeled by the span's
/// target and name. This is what turns spans into a profile: the bench
/// `--profile` report renders per-span count/total/p50/p99 straight
/// from the histogram registry, with no dependence on the tracer's
/// level filter (span histograms record even when `Debug` events are
/// filtered, so a profile never comes back empty).
pub fn record_span(target: &'static str, name: &'static str, elapsed: std::time::Duration) {
    crate::registry::global()
        .histogram(
            "span_elapsed_us",
            "Wall-clock duration of timed_span! blocks by target and span name.",
            &[("target", target), ("span", name)],
        )
        .record_saturating(elapsed.as_micros());
}

/// Runs a block, records its wall-clock duration into the
/// `span_elapsed_us{target,span}` histogram (see [`record_span`]), and
/// emits a `Debug` event carrying the duration in microseconds as the
/// `elapsed_us` field. Evaluates to the block's value.
///
/// ```
/// use livephase_telemetry::timed_span;
/// let sum: u64 = timed_span!("doc::example", "sum", { (1..=10u64).sum() });
/// assert_eq!(sum, 55);
/// ```
#[macro_export]
macro_rules! timed_span {
    ($target:expr, $name:expr, $body:block) => {{
        // lint:allow(determinism): timed_span measures wall-clock for telemetry only
        let started = ::std::time::Instant::now();
        let value = $body;
        let elapsed = started.elapsed();
        $crate::record_span($target, $name, elapsed);
        $crate::trace_event!(
            $crate::Level::Debug,
            $target,
            $name,
            elapsed_us = elapsed.as_micros()
        );
        value
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_filter() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Warn < Level::Error);
        let t = Tracer::new();
        t.set_level(Level::Warn);
        assert!(!t.enabled(Level::Info));
        assert!(t.enabled(Level::Warn));
        assert!(t.enabled(Level::Error));
    }

    #[test]
    fn ring_retains_recent_events_in_order() {
        let t = Tracer::new();
        t.set_level(Level::Trace);
        for i in 0..(RING_CAPACITY + 10) {
            t.emit(Event {
                unix_ms: 0,
                level: Level::Info,
                target: "test",
                message: format!("event {i}"),
                fields: Vec::new(),
            });
        }
        let recent = t.recent(5);
        assert_eq!(recent.len(), 5);
        let last = RING_CAPACITY + 9;
        for (k, e) in recent.iter().enumerate() {
            assert_eq!(e.message, format!("event {}", last - 4 + k));
        }
        assert_eq!(t.dropped(), 0, "single-threaded emit never contends");
    }

    #[test]
    fn filtered_events_do_not_reach_the_ring() {
        let t = Tracer::new();
        t.set_level(Level::Error);
        t.emit(Event {
            unix_ms: 0,
            level: Level::Info,
            target: "test",
            message: "dropped".into(),
            fields: Vec::new(),
        });
        assert!(t.recent(10).is_empty());
    }

    #[test]
    fn human_and_json_renderings_are_stable() {
        let e = Event {
            unix_ms: 1_700_000_000_123,
            level: Level::Warn,
            target: "serve::server",
            message: "conn \"x\"\nclosed".to_owned(),
            fields: vec![("conn", "42".to_owned()), ("why", "idle".to_owned())],
        };
        assert_eq!(
            e.to_human(),
            "[ WARN] serve::server conn \"x\"\nclosed conn=42 why=idle"
        );
        assert_eq!(
            e.to_json(),
            "{\"ts_ms\":1700000000123,\"level\":\"WARN\",\"target\":\"serve::server\",\
             \"message\":\"conn \\\"x\\\"\\nclosed\",\"conn\":\"42\",\"why\":\"idle\"}"
        );
    }

    #[test]
    fn macros_compile_and_emit() {
        tracer().set_level(Level::Trace);
        trace_event!(
            Level::Info,
            "telemetry::test",
            "macro event",
            k = 7,
            s = "x"
        );
        let v = timed_span!("telemetry::test", "span", { 21 * 2 });
        assert_eq!(v, 42);
        let recent = tracer().recent(RING_CAPACITY);
        assert!(recent
            .iter()
            .any(|e| e.message == "macro event" && e.fields.contains(&("k", "7".to_owned()))));
        assert!(recent
            .iter()
            .any(|e| e.message == "span" && e.fields.iter().any(|(k, _)| *k == "elapsed_us")));
        tracer().set_level(Level::Info);
    }

    #[test]
    fn timed_span_feeds_the_span_histogram_regardless_of_level() {
        tracer().set_level(Level::Error); // Debug events filtered
        let before = span_count("telemetry::test", "histo_span");
        let v = timed_span!("telemetry::test", "histo_span", { 6 * 7 });
        assert_eq!(v, 42);
        assert_eq!(
            span_count("telemetry::test", "histo_span"),
            before + 1,
            "span histograms record even when the tracer filters the event"
        );
        tracer().set_level(Level::Info);
    }

    fn span_count(target: &str, name: &str) -> u64 {
        let mut count = 0;
        crate::registry::global().visit_histograms(|metric, labels, h| {
            if metric == "span_elapsed_us"
                && labels.iter().any(|(k, v)| k == "target" && v == target)
                && labels.iter().any(|(k, v)| k == "span" && v == name)
            {
                count = h.count();
            }
        });
        count
    }

    #[test]
    fn emit_under_concurrency_never_blocks_or_panics() {
        let t = std::sync::Arc::new(Tracer::new());
        t.set_level(Level::Trace);
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        t.emit(Event {
                            unix_ms: 0,
                            level: Level::Info,
                            target: "test",
                            message: format!("w{w} e{i}"),
                            fields: Vec::new(),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Everything emitted was either retained, overwritten, or
        // counted as dropped; the ring never holds more than capacity.
        assert!(t.recent(usize::MAX).len() <= RING_CAPACITY);
    }
}
