//! Parsing the Prometheus-style text exposition back into structured
//! values, and rendering those as JSON.
//!
//! The scrape wire format ([`Frame::Metrics`] in `livephase-serve`) is
//! the text form [`Registry::render`](crate::Registry::render) emits.
//! External collectors and the bench/profile tooling should not have to
//! re-implement text parsing, so this module does it once: the CLI's
//! `metrics <addr> --json` scrapes the text form and converts it here.
//! Histogram series are folded back together (`_bucket`/`_sum`/
//! `_count`/`_overflow`), and quantile estimates are recomputed from
//! the cumulative buckets with the same nearest-rank rule
//! [`Histogram::quantile`](crate::Histogram::quantile) uses, so a
//! remote scrape answers the same questions an in-process handle would.

use std::fmt;

/// One parsed metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedFamily {
    /// Family name as registered (histograms keep their `_us` base
    /// name; the rendered `_bucket`/`_sum`/`_count`/`_overflow` series
    /// are folded into [`ScrapedValue::Histogram`]).
    pub name: String,
    /// `counter`, `gauge` or `histogram` (from the `# TYPE` header).
    pub kind: String,
    /// Help text (from the `# HELP` header), possibly empty.
    pub help: String,
    /// The family's series, in exposition order.
    pub series: Vec<ScrapedSeries>,
}

/// One labeled series within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapedSeries {
    /// Sorted `(key, value)` label pairs (without the synthetic `le`).
    pub labels: Vec<(String, String)>,
    /// The series' value.
    pub value: ScrapedValue,
}

/// A parsed series value.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrapedValue {
    /// A counter or gauge sample, kept as the exposition's literal
    /// token (always a valid JSON number for this renderer's output).
    Scalar(String),
    /// A histogram folded back from its rendered series.
    Histogram(ScrapedHistogram),
}

/// A histogram reassembled from `_bucket`/`_sum`/`_count`/`_overflow`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScrapedHistogram {
    /// `(upper bound, cumulative count)` per non-empty finite bucket,
    /// ascending. The `+Inf` bucket is folded into [`count`](Self::count).
    pub buckets: Vec<(u64, u64)>,
    /// Total observations (`_count`, equal to the `+Inf` bucket).
    pub count: u64,
    /// Sum of observations (`_sum`).
    pub sum: u64,
    /// Observations clamped into the top bucket (`_overflow`); nonzero
    /// means quantiles near the cap undercount the true tail.
    pub overflow: u64,
}

impl ScrapedHistogram {
    /// Nearest-rank quantile estimate from the cumulative buckets: the
    /// upper bound of the bucket holding the rank-`ceil(q * count)`
    /// observation, or `None` when empty. Matches the in-process
    /// estimator up to the exact-max clamp (the exposition does not
    /// carry the exact max).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        self.buckets
            .iter()
            .find(|(_, cumulative)| *cumulative >= rank)
            .map(|(upper, _)| *upper)
            .or_else(|| self.buckets.last().map(|(upper, _)| *upper))
    }
}

/// A scrape line this parser could not digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScrapeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scrape line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScrapeParseError {}

fn err(line: usize, message: impl Into<String>) -> ScrapeParseError {
    ScrapeParseError {
        line,
        message: message.into(),
    }
}

/// Splits `name{k="v",...}` into the name and its label pairs,
/// honouring the renderer's `\\` / `\"` / `\n` escapes.
fn parse_series_key(
    token: &str,
    line: usize,
) -> Result<(String, Vec<(String, String)>), ScrapeParseError> {
    let Some(brace) = token.find('{') else {
        return Ok((token.to_owned(), Vec::new()));
    };
    let (name, label_part) = token.split_at(brace);
    let body = label_part
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err(line, "unterminated label set"))?;
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find("=\"")
            .ok_or_else(|| err(line, "label without =\"value\""))?;
        let key = rest.get(..eq).unwrap_or_default().to_owned();
        let quoted = rest.get(eq + 2..).unwrap_or_default();
        let mut value = String::new();
        let mut chars = quoted.char_indices();
        let mut closed_at = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(err(line, "dangling escape in label value")),
                },
                '"' => {
                    closed_at = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let close = closed_at.ok_or_else(|| err(line, "unterminated label value"))?;
        labels.push((key, value));
        rest = quoted.get(close + 1..).unwrap_or_default();
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok((name.to_owned(), labels))
}

/// Maps a rendered series name back to its histogram family, returning
/// the base name and which component the line carries.
fn histogram_component(name: &str) -> Option<(&str, &'static str)> {
    for suffix in ["_bucket", "_sum", "_count", "_overflow"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return Some((base, suffix));
        }
    }
    None
}

/// Parses a full text exposition into structured families.
///
/// # Errors
///
/// Returns a [`ScrapeParseError`] naming the first line that does not
/// parse — a malformed label set, a non-numeric sample, or a histogram
/// series with no preceding `# TYPE` header.
pub fn parse_exposition(text: &str) -> Result<Vec<ScrapedFamily>, ScrapeParseError> {
    let mut families: Vec<ScrapedFamily> = Vec::new();
    let mut helps: Vec<(String, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            helps.push((
                name.to_owned(),
                help.replace("\\n", "\n").replace("\\\\", "\\"),
            ));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| err(line_no, "# TYPE without a kind"))?;
            let help = helps
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_default();
            families.push(ScrapedFamily {
                name: name.to_owned(),
                kind: kind.to_owned(),
                help,
                series: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal exposition noise
        }
        let (key, value_tok) = line
            .rsplit_once(' ')
            .ok_or_else(|| err(line_no, "series line without a value"))?;
        let (series_name, mut labels) = parse_series_key(key.trim_end(), line_no)?;
        let family = families
            .last_mut()
            .ok_or_else(|| err(line_no, "series before any # TYPE header"))?;
        if family.kind == "histogram" {
            let (base, component) = histogram_component(&series_name)
                .filter(|(base, _)| *base == family.name)
                .ok_or_else(|| {
                    err(
                        line_no,
                        format!(
                            "series `{series_name}` does not extend histogram `{}`",
                            family.name
                        ),
                    )
                })?;
            debug_assert_eq!(base, family.name);
            let le = if component == "_bucket" {
                let pos = labels
                    .iter()
                    .position(|(k, _)| k == "le")
                    .ok_or_else(|| err(line_no, "_bucket series without le label"))?;
                Some(labels.remove(pos).1)
            } else {
                None
            };
            if !family.series.iter().any(|s| s.labels == labels) {
                family.series.push(ScrapedSeries {
                    labels: labels.clone(),
                    value: ScrapedValue::Histogram(ScrapedHistogram::default()),
                });
            }
            let Some(ScrapedValue::Histogram(hist)) = family
                .series
                .iter_mut()
                .find(|s| s.labels == labels)
                .map(|s| &mut s.value)
            else {
                return Err(err(line_no, "histogram series previously seen as scalar"));
            };
            let n: u64 = value_tok
                .parse()
                .map_err(|e| err(line_no, format!("bad histogram sample {value_tok:?}: {e}")))?;
            match (component, le.as_deref()) {
                ("_bucket", Some("+Inf")) | ("_count", None) => hist.count = n,
                ("_bucket", Some(bound)) => {
                    let upper: u64 = bound
                        .parse()
                        .map_err(|e| err(line_no, format!("bad le bound {bound:?}: {e}")))?;
                    hist.buckets.push((upper, n));
                }
                ("_sum", None) => hist.sum = n,
                ("_overflow", None) => hist.overflow = n,
                _ => return Err(err(line_no, "histogram component with unexpected le")),
            }
        } else {
            if value_tok.parse::<f64>().is_err() {
                return Err(err(line_no, format!("non-numeric sample {value_tok:?}")));
            }
            family.series.push(ScrapedSeries {
                labels,
                value: ScrapedValue::Scalar(value_tok.to_owned()),
            });
        }
    }
    Ok(families)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn labels_json(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Renders parsed families as one JSON object:
/// `{"metrics":[{name, kind, help, series:[{labels, value} |
/// {labels, count, sum, overflow, p50, p90, p99}]}]}`.
#[must_use]
pub fn families_to_json(families: &[ScrapedFamily]) -> String {
    use fmt::Write as _;
    let mut out = String::from("{\"metrics\":[");
    for (fi, family) in families.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"series\":[",
            json_escape(&family.name),
            json_escape(&family.kind),
            json_escape(&family.help),
        );
        for (si, series) in family.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            match &series.value {
                ScrapedValue::Scalar(v) => {
                    let _ = write!(
                        out,
                        "{{\"labels\":{},\"value\":{v}}}",
                        labels_json(&series.labels)
                    );
                }
                ScrapedValue::Histogram(h) => {
                    let q = |p: f64| {
                        h.quantile(p)
                            .map_or_else(|| "null".to_owned(), |v| v.to_string())
                    };
                    let _ = write!(
                        out,
                        "{{\"labels\":{},\"count\":{},\"sum\":{},\"overflow\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{}}}",
                        labels_json(&series.labels),
                        h.count,
                        h.sum,
                        h.overflow,
                        q(0.5),
                        q(0.9),
                        q(0.99),
                    );
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Parses a text exposition and renders it as JSON in one call — the
/// `livephase metrics <addr> --json` implementation.
///
/// # Errors
///
/// Propagates the first [`ScrapeParseError`].
pub fn exposition_to_json(text: &str) -> Result<String, ScrapeParseError> {
    Ok(families_to_json(&parse_exposition(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn round_trips_a_real_registry_render() {
        let r = Registry::new();
        r.counter("conns_total", "Connections served.", &[("shard", "0")])
            .add(7);
        r.gauge("depth", "Queue depth.", &[]).set(-2);
        let h = r.histogram("lat_us", "Latency.", &[("shard", "0")]);
        for v in 1..=100u64 {
            h.record(v);
        }
        h.record_saturating(u128::MAX);
        let families = parse_exposition(&r.render()).expect("own render parses");
        assert_eq!(families.len(), 3);

        let conns = &families[0];
        assert_eq!(
            (conns.name.as_str(), conns.kind.as_str()),
            ("conns_total", "counter")
        );
        assert_eq!(conns.help, "Connections served.");
        assert_eq!(
            conns.series[0].labels,
            vec![("shard".to_owned(), "0".to_owned())]
        );
        assert_eq!(conns.series[0].value, ScrapedValue::Scalar("7".to_owned()));

        let depth = &families[1];
        assert_eq!(depth.series[0].value, ScrapedValue::Scalar("-2".to_owned()));

        let lat = &families[2];
        assert_eq!(lat.kind, "histogram");
        let ScrapedValue::Histogram(parsed) = &lat.series[0].value else {
            panic!("histogram series expected");
        };
        assert_eq!(parsed.count, 101);
        assert_eq!(parsed.overflow, 1);
        // The parsed quantile agrees with the in-process estimator up
        // to the exact-max clamp the exposition cannot carry.
        let p50 = parsed.quantile(0.5).unwrap();
        let live = h.quantile(0.5).unwrap();
        assert!(
            p50 >= live && p50 <= live + live / 32 + 1,
            "{p50} vs {live}"
        );
        assert_eq!(parsed.quantile(0.0), Some(1));
    }

    #[test]
    fn json_output_is_mechanical_and_escaped() {
        let r = Registry::new();
        r.counter("x_total", "say \"hi\"", &[("k", "a\"b")]).inc();
        r.histogram("y_us", "", &[]).record(5);
        let json = exposition_to_json(&r.render()).unwrap();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"name\":\"x_total\""));
        assert!(json.contains("\"help\":\"say \\\"hi\\\"\""));
        assert!(json.contains("\"k\":\"a\\\"b\""));
        assert!(json.contains("\"value\":1"));
        assert!(json.contains("\"name\":\"y_us\""));
        assert!(json.contains("\"count\":1,\"sum\":5,\"overflow\":0"));
        assert!(json.contains("\"p50\":5"));
        // Balanced brackets: a cheap structural sanity check the CLI
        // test repeats on live scrape output.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_histogram_quantiles_are_null() {
        let r = Registry::new();
        let _ = r.histogram("z_us", "", &[]);
        let json = exposition_to_json(&r.render()).unwrap();
        assert!(json.contains("\"p50\":null"));
    }

    #[test]
    fn malformed_lines_are_named() {
        let e = parse_exposition("not a metric at all\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_exposition("# TYPE a_total counter\na_total banana\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("banana"));
        let e = parse_exposition("orphan_total 3\n").unwrap_err();
        assert!(e.message.contains("before any # TYPE"));
    }
}
