//! Per-connection state for the epoll reactor.
//!
//! A [`Conn`] owns one nonblocking socket, its resumable
//! [`FrameDecoder`], and its bounded outbound byte queue, and advances a
//! small phase machine (`Hello` → `Streaming` → `Closing`) as readiness
//! events arrive. It is driven entirely by its shard's event loop (see
//! [`crate::shard`]): `on_readable` pulls bytes into the decoder and
//! walks complete frames, `flush_run` pushes a coalesced run of samples
//! through [`SessionState::apply_batch`] and encodes the decisions
//! in-place with [`wire::encode_into`], and `try_flush` drains the
//! outbound queue until the socket pushes back.
//!
//! The frame-level behavior mirrors the blocking path exactly — same
//! handshake refusals, same poisoning rules, same counters — so the two
//! modes stay bit-identical oracles for each other. What the reactor
//! adds is backpressure: a peer that stops draining its socket has its
//! queue capped at `max_outbound_bytes` and is shed with a typed
//! [`ErrorCode::SlowConsumer`], and a peer that goes quiet past the read
//! timeout is reaped on the shard's coarse tick.
//!
//! Steady-state serving allocates nothing per frame: reads land in the
//! shard's reusable scratch buffer, the decoder recycles its internal
//! buffer, and decisions are appended to the connection's reused
//! outbound `Vec` without intermediate encode allocations.

use crate::engine::{Decision, EngineConfig, Sample, SessionState};
use crate::server::{frame_name, Shared};
use crate::shard::ReactorMetrics;
use crate::wire::{self, ErrorCode, Frame, FrameDecoder, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use livephase_telemetry::{trace_event, Level};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
// lint:allow(determinism): Instant feeds idle reaping and latency telemetry; the
// decision path itself is a pure function of the sample stream.
use std::time::{Duration, Instant};

use crate::reactor::Interest;

/// Tracing target for connection lifecycle events under the reactor.
const TRACE: &str = "serve::conn";

/// Consecutive `read(2)` calls per readiness event before yielding back
/// to the event loop; level-triggered registration re-delivers anything
/// left, so this only bounds per-connection monopoly of the shard.
const MAX_READS_PER_EVENT: usize = 4;

/// Once this many sent bytes accumulate at the front of the outbound
/// queue mid-stream, they are compacted away so the buffer cannot creep.
const OUTBOUND_COMPACT_BYTES: usize = 32 * 1024;

/// Longest a fully flushed, half-closed connection waits for the peer's
/// EOF before being force-closed. The half-close (FIN after the final
/// flush, then drain until EOF) is what lets the terminal error frame
/// reach a peer that is still writing — an immediate `close(2)` with
/// unread inbound bytes resets the connection and destroys it in flight.
const FIN_LINGER: Duration = Duration::from_millis(500);

/// Where a connection is in its protocol lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the `Hello` handshake frame.
    Hello,
    /// Handshake done; serving samples.
    Streaming,
    /// Terminal: flush whatever is queued outbound, half-close, then
    /// wait (briefly) for the peer's EOF. Inbound bytes are drained and
    /// discarded, never decoded.
    Closing,
}

/// Everything a [`Conn`] needs from its shard to process an event:
/// engine and shared counters, the shard's instrument handles, and the
/// shard-owned reuse buffers (samples in, decisions out).
pub(crate) struct Cx<'a> {
    /// Phase map / translation table / platform served.
    pub(crate) engine: &'a EngineConfig,
    /// Server-wide counters and process-global metric handles.
    pub(crate) shared: &'a Shared,
    /// This shard's instrument handles.
    pub(crate) metrics: &'a ReactorMetrics,
    /// Which shard owns this connection (echoed in `HelloAck`).
    pub(crate) shard_index: usize,
    /// Total shard count (echoed in `Stats`).
    pub(crate) shards_total: usize,
    /// Outbound queue cap; exceeding it sheds the connection.
    pub(crate) max_outbound: usize,
    /// Shard-owned run accumulator: consecutive samples coalesce here
    /// and flush through `apply_batch` in one swing.
    pub(crate) samples: &'a mut Vec<Sample>,
    /// Shard-owned decision reuse buffer for `apply_batch`.
    pub(crate) decisions: &'a mut Vec<Decision>,
    /// Per-operating-point worst-case power bound in milliwatts, indexed
    /// by the decision's `op_point`. Precomputed once per shard from the
    /// configured power backend so flushing a run costs one table lookup.
    pub(crate) power_mw: &'a [i64],
    /// The event loop's notion of now (one clock read per wake).
    pub(crate) now: Instant, // lint:allow(determinism): I/O timeouts and telemetry only, never a decision input
}

/// One reactor-owned connection.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Server-wide connection id (1-based admission order).
    pub(crate) conn_id: u64,
    /// Whether this connection passed the accept gate (refused-busy
    /// connections exist only to flush their `Error{Busy}`).
    pub(crate) admitted: bool,
    /// The interest currently registered with the shard's epoll.
    pub(crate) interest: Option<Interest>,
    decoder: FrameDecoder,
    outbound: Vec<u8>,
    sent: usize,
    version: u16,
    session: Option<SessionState>,
    phase: Phase,
    peer_gone: bool,
    fin_sent: bool,
    last_activity: Instant, // lint:allow(determinism): idle-reap bookkeeping, not a decision input
    closing_since: Option<Instant>, // lint:allow(determinism): flush-deadline bookkeeping, not a decision input
}

impl Conn {
    /// A connection admitted past the accept gate, awaiting its `Hello`.
    // lint:allow(determinism): the timestamp seeds idle-reap bookkeeping only
    pub(crate) fn admitted(stream: TcpStream, conn_id: u64, now: Instant) -> Self {
        Self {
            stream,
            conn_id,
            admitted: true,
            interest: None,
            decoder: FrameDecoder::new(),
            outbound: Vec::new(),
            sent: 0,
            version: PROTOCOL_VERSION,
            session: None,
            phase: Phase::Hello,
            peer_gone: false,
            fin_sent: false,
            last_activity: now,
            closing_since: None,
        }
    }

    /// A connection refused at the accept gate: its only business is
    /// flushing the queued `Error{Busy}` and closing.
    // lint:allow(determinism): the timestamp seeds flush-deadline bookkeeping only
    pub(crate) fn refused(stream: TcpStream, now: Instant) -> Self {
        let mut conn = Self {
            stream,
            conn_id: 0,
            admitted: false,
            interest: None,
            decoder: FrameDecoder::new(),
            outbound: Vec::new(),
            sent: 0,
            version: PROTOCOL_VERSION,
            session: None,
            phase: Phase::Closing,
            peer_gone: false,
            fin_sent: false,
            last_activity: now,
            closing_since: Some(now),
        };
        conn.queue_frame(&Frame::Error {
            code: ErrorCode::Busy,
            message: "connection limit reached; retry later".to_owned(),
        });
        conn
    }

    /// Bytes queued outbound and not yet written to the socket.
    pub(crate) fn pending(&self) -> usize {
        self.outbound.len().saturating_sub(self.sent)
    }

    /// The interest this connection wants registered right now; `None`
    /// means it is finished and should be closed.
    pub(crate) fn desired(&self) -> Option<Interest> {
        if self.peer_gone {
            return None;
        }
        match self.phase {
            // Read interest is kept while closing so inbound bytes are
            // drained (and discarded): closing with unread data in the
            // receive buffer resets the connection, destroying the
            // terminal error frame in flight. After the final flush and
            // the half-close, the connection waits for the peer's EOF.
            Phase::Closing => Some(if self.pending() > 0 {
                Interest::ReadWrite
            } else {
                Interest::Read
            }),
            Phase::Hello | Phase::Streaming => {
                if self.pending() > 0 {
                    Some(Interest::ReadWrite)
                } else {
                    Some(Interest::Read)
                }
            }
        }
    }

    /// Handles a readable event: pull bytes into the decoder, walk the
    /// complete frames, flush the resulting run of samples, and make an
    /// opportunistic write pass.
    pub(crate) fn on_readable(&mut self, scratch: &mut [u8], cx: &mut Cx<'_>) {
        if self.phase == Phase::Closing {
            // Shedding or draining: inbound frames are no longer decoded,
            // but the bytes must still be pulled off the socket and
            // discarded — a close with unread data pending would RST the
            // connection and take the queued terminal error with it.
            for _ in 0..MAX_READS_PER_EVENT {
                match self.stream.read(scratch) {
                    Ok(0) => {
                        self.peer_gone = true;
                        break;
                    }
                    Ok(n) if n < scratch.len() => break,
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.peer_gone = true;
                        break;
                    }
                }
            }
            self.try_flush(cx.now);
            return;
        }
        for _ in 0..MAX_READS_PER_EVENT {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => {
                    self.last_activity = cx.now;
                    let Some(chunk) = scratch.get(..n) else {
                        unreachable!("read(2) never returns more than the buffer length")
                    };
                    self.decoder.feed(chunk);
                    if n < scratch.len() {
                        break; // socket drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
        self.drain_frames(cx);
        self.try_flush(cx.now);
    }

    /// Handles a writable event.
    // lint:allow(determinism): the timestamp feeds activity bookkeeping only
    pub(crate) fn on_writable(&mut self, now: Instant) {
        self.try_flush(now);
    }

    /// Writes queued outbound bytes until the socket pushes back, then
    /// compacts the queue.
    // lint:allow(determinism): the timestamp feeds activity bookkeeping only
    pub(crate) fn try_flush(&mut self, now: Instant) {
        while self.sent < self.outbound.len() {
            let Some(chunk) = self.outbound.get(self.sent..) else {
                unreachable!("sent is bounded by outbound.len() by the loop condition")
            };
            match self.stream.write(chunk) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => {
                    self.sent += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
        if self.sent == self.outbound.len() {
            self.outbound.clear();
            self.sent = 0;
            if self.phase == Phase::Closing && !self.fin_sent {
                // Everything queued (the terminal error included) is on
                // the wire: half-close so the peer sees a clean FIN
                // after the data, and wait for its EOF.
                let _ = self.stream.shutdown(Shutdown::Write);
                self.fin_sent = true;
            }
        } else if self.sent >= OUTBOUND_COMPACT_BYTES {
            self.outbound.drain(..self.sent);
            self.sent = 0;
        }
    }

    /// Walks every complete frame banked in the decoder, then flushes
    /// the accumulated sample run and applies the backpressure cap.
    fn drain_frames(&mut self, cx: &mut Cx<'_>) {
        loop {
            if self.phase == Phase::Closing {
                break;
            }
            let started = Instant::now(); // lint:allow(determinism): decode-latency histogram only
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    cx.metrics
                        .decode_us
                        .record_saturating(started.elapsed().as_micros());
                    let resumes = self.decoder.last_resumes();
                    if resumes > 0 {
                        cx.metrics.decode_resumes.record(u64::from(resumes));
                    }
                    self.on_frame(frame, cx);
                }
                Ok(None) => break,
                Err(e) => {
                    // Samples decoded before the damage still get their
                    // decisions, matching the blocking reader which had
                    // already forwarded them to its shard.
                    self.flush_run(cx);
                    self.refuse(ErrorCode::Malformed, e.to_string());
                    self.poison(cx);
                    self.start_closing(cx.now);
                    break;
                }
            }
        }
        self.flush_run(cx);
        self.check_backpressure(cx);
    }

    /// Dispatches one decoded frame through the phase machine.
    fn on_frame(&mut self, frame: Frame, cx: &mut Cx<'_>) {
        match self.phase {
            Phase::Hello => self.on_hello_frame(frame, cx),
            Phase::Streaming => self.on_streaming_frame(frame, cx),
            Phase::Closing => {}
        }
    }

    /// The handshake: same refusal taxonomy as the blocking path.
    fn on_hello_frame(&mut self, frame: Frame, cx: &mut Cx<'_>) {
        let (version, platform, predictor) = match frame {
            Frame::Hello {
                version,
                client_id: _,
                platform,
                predictor,
            } => (version, platform, predictor),
            Frame::Goodbye => {
                self.start_closing(cx.now);
                return;
            }
            other => {
                self.refuse(
                    ErrorCode::Protocol,
                    format!("expected Hello, got {}", frame_name(&other)),
                );
                self.poison(cx);
                self.start_closing(cx.now);
                return;
            }
        };
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            self.refuse(
                ErrorCode::VersionMismatch,
                format!(
                    "server speaks protocol v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}, \
                     client sent v{version}"
                ),
            );
            self.poison(cx);
            self.start_closing(cx.now);
            return;
        }
        if platform != cx.engine.platform() {
            self.refuse(
                ErrorCode::BadConfig,
                format!(
                    "server is configured for platform {:?}",
                    cx.engine.platform()
                ),
            );
            self.poison(cx);
            self.start_closing(cx.now);
            return;
        }
        match SessionState::new(cx.engine, &predictor) {
            Ok(session) => {
                self.session = Some(session);
                self.version = version;
                cx.metrics.shard.sessions.inc();
                self.queue_frame(&Frame::HelloAck {
                    version,
                    shard: u32::try_from(cx.shard_index).unwrap_or(u32::MAX),
                    op_points: cx.engine.op_points(),
                });
                self.phase = Phase::Streaming;
                trace_event!(
                    Level::Debug,
                    TRACE,
                    "session registered",
                    conn = self.conn_id,
                    shard = cx.shard_index,
                    version = version
                );
            }
            Err(e) => {
                // Parity with the blocking path, where the shard refuses
                // the registration on the reply channel: a predictor
                // spec that does not parse earns Error{BadConfig} but no
                // poisoning — the transport behaved.
                self.refuse(ErrorCode::BadConfig, e.to_string());
                self.start_closing(cx.now);
            }
        }
    }

    /// The post-handshake loop body: samples accumulate into the run,
    /// everything else flushes the run first to preserve per-session
    /// decision order.
    fn on_streaming_frame(&mut self, frame: Frame, cx: &mut Cx<'_>) {
        match frame {
            Frame::Sample {
                pid,
                uops,
                mem_trans,
                tsc_delta: _,
            } => {
                cx.samples.push(Sample {
                    pid,
                    uops,
                    mem_transactions: mem_trans,
                });
            }
            Frame::StatsRequest => {
                self.flush_run(cx);
                let shards = u32::try_from(cx.shards_total).unwrap_or(u32::MAX);
                self.queue_frame(&Frame::Stats(cx.shared.snapshot(shards)));
            }
            Frame::MetricsRequest => {
                self.flush_run(cx);
                if self.version < 2 {
                    self.refuse(
                        ErrorCode::Protocol,
                        format!(
                            "MetricsRequest needs protocol v2, session negotiated v{}",
                            self.version
                        ),
                    );
                    self.poison(cx);
                    self.start_closing(cx.now);
                } else {
                    // lint:allow(panic-reachable): `.render()` is the telemetry
                    // Registry's; the fan-out to `experiments::Table::render`
                    // is a false edge.
                    let text = wire::truncate_metrics_text(&livephase_telemetry::global().render())
                        .to_owned();
                    self.queue_frame(&Frame::Metrics { text });
                }
            }
            Frame::Goodbye => {
                self.flush_run(cx);
                self.start_closing(cx.now);
            }
            other => {
                self.flush_run(cx);
                self.refuse(
                    ErrorCode::Protocol,
                    format!("client may not send {}", frame_name(&other)),
                );
                self.poison(cx);
                self.start_closing(cx.now);
            }
        }
    }

    /// Pushes the accumulated sample run through the session's
    /// `apply_batch` and encodes the decisions straight onto the
    /// outbound queue — the reactor's equivalent of the blocking
    /// shard's `serve_sample_run`, with identical counter accounting.
    fn flush_run(&mut self, cx: &mut Cx<'_>) {
        if cx.samples.is_empty() {
            return;
        }
        let Some(session) = self.session.as_mut() else {
            cx.samples.clear();
            return;
        };
        let n = cx.samples.len() as u64;
        let before = session.processes();
        let started = Instant::now(); // lint:allow(determinism): decision-latency histogram only
        cx.decisions.clear();
        session.apply_batch(cx.samples, cx.decisions);
        // One histogram entry per decision at the batch-amortized cost,
        // so the count still equals the decision count.
        let per_decision_us = started.elapsed().as_micros() / u128::from(n.max(1));
        cx.metrics
            .shard
            .decision_us
            .record_n_saturating(per_decision_us, n);
        cx.metrics.shard.samples_total.add(n);
        cx.shared.samples.fetch_add(n, Ordering::Relaxed);
        let grown = (session.processes() - before) as u64;
        if grown > 0 {
            cx.shared.processes.fetch_add(grown, Ordering::Relaxed);
        }
        let enc_started = Instant::now(); // lint:allow(determinism): encode-latency histogram only
        for d in cx.decisions.iter() {
            wire::encode_into(
                &Frame::Decision {
                    pid: d.pid,
                    op_point: d.op_point,
                    confidence: d.confidence,
                },
                &mut self.outbound,
            );
        }
        let per_encode_us = enc_started.elapsed().as_micros() / u128::from(n.max(1));
        cx.shared
            .metrics
            .frame_encode_us
            .record_n_saturating(per_encode_us, cx.decisions.len() as u64);
        cx.shared
            .decisions
            .fetch_add(cx.decisions.len() as u64, Ordering::Relaxed);
        // Price the shard's latest decision at the configured backend's
        // worst-case bound. Out-of-table op points (foreign platform
        // tables can be wider) leave the gauge untouched.
        if let Some(d) = cx.decisions.last() {
            if let Some(&mw) = cx.power_mw.get(usize::from(d.op_point)) {
                cx.metrics.shard.power_estimate_mw.set(mw);
            }
        }
        cx.samples.clear();
    }

    /// Sheds the connection if its outbound queue overflowed the cap: a
    /// typed `Error{SlowConsumer}` past the cap, inbound reads stop, and
    /// the write timeout bounds how long the flush may take.
    fn check_backpressure(&mut self, cx: &mut Cx<'_>) {
        if self.phase == Phase::Closing || self.pending() <= cx.max_outbound {
            return;
        }
        cx.metrics.shed_total.inc();
        trace_event!(
            Level::Warn,
            TRACE,
            "slow consumer shed",
            conn = self.conn_id,
            queued = self.pending(),
            cap = cx.max_outbound
        );
        self.refuse(
            ErrorCode::SlowConsumer,
            format!(
                "outbound queue exceeded {} bytes; shedding slow consumer",
                cx.max_outbound
            ),
        );
        self.poison(cx);
        self.start_closing(cx.now);
    }

    /// Starts the graceful drain: parity with the blocking reader, which
    /// refuses the next read with `Error{ShuttingDown}` — decisions
    /// already queued outbound still flush before the close.
    pub(crate) fn begin_drain(&mut self, cx: &mut Cx<'_>) {
        if self.phase == Phase::Closing {
            return;
        }
        self.refuse(ErrorCode::ShuttingDown, "server is draining".to_owned());
        self.start_closing(cx.now);
        self.try_flush(cx.now);
    }

    /// The coarse-tick sweep: reaps idle connections past the read
    /// timeout and force-closes closing connections whose peer will not
    /// drain the final flush within the write timeout.
    pub(crate) fn reap(
        &mut self,
        cx: &mut Cx<'_>,
        read_timeout: Duration,
        write_timeout: Duration,
    ) {
        match self.phase {
            Phase::Closing => {
                if let Some(since) = self.closing_since {
                    let limit = if self.pending() > 0 {
                        write_timeout
                    } else {
                        // Flushed and half-closed: only the peer's EOF
                        // is outstanding, so wait much less.
                        write_timeout.min(FIN_LINGER)
                    };
                    if cx.now.duration_since(since) >= limit {
                        if self.pending() > 0 {
                            trace_event!(
                                Level::Warn,
                                TRACE,
                                "closing connection abandoned unflushed",
                                conn = self.conn_id,
                                queued = self.pending()
                            );
                        }
                        self.peer_gone = true;
                    }
                }
            }
            Phase::Hello | Phase::Streaming => {
                if cx.now.duration_since(self.last_activity) >= read_timeout {
                    cx.metrics.reaped_total.inc();
                    self.refuse(
                        ErrorCode::IdleTimeout,
                        format!("no frame within {read_timeout:?}"),
                    );
                    self.poison(cx);
                    self.start_closing(cx.now);
                    self.try_flush(cx.now);
                }
            }
        }
    }

    /// Final bookkeeping when the shard closes this connection: the
    /// session's predictor state (and its process count) retires with it.
    pub(crate) fn finish(&mut self, shared: &Shared, metrics: &ReactorMetrics) {
        if let Some(session) = self.session.take() {
            shared
                .processes
                .fetch_sub(session.processes() as u64, Ordering::Relaxed);
            metrics.shard.sessions.dec();
        }
    }

    /// Appends one frame to the outbound queue (no allocation beyond the
    /// queue's own growth).
    fn queue_frame(&mut self, frame: &Frame) {
        wire::encode_into(frame, &mut self.outbound);
    }

    /// Queues a terminal `Error` frame and counts it, exactly like the
    /// blocking path's `refuse`.
    fn refuse(&mut self, code: ErrorCode, message: impl Into<String>) {
        // Cold path — refusals are terminal — so the registry lookup per
        // call is fine.
        livephase_telemetry::global()
            .counter(
                "serve_errors_total",
                "Terminal Error frames sent, by error code.",
                &[("code", code.label())],
            )
            .inc();
        self.queue_frame(&Frame::Error {
            code,
            message: message.into(),
        });
    }

    fn poison(&mut self, cx: &Cx<'_>) {
        cx.shared.poisoned.fetch_add(1, Ordering::Relaxed);
        cx.shared.metrics.poisoned_total.inc();
        trace_event!(
            Level::Warn,
            TRACE,
            "connection poisoned",
            conn = self.conn_id
        );
    }

    // lint:allow(determinism): the timestamp seeds the flush deadline only
    fn start_closing(&mut self, now: Instant) {
        self.phase = Phase::Closing;
        if self.closing_since.is_none() {
            self.closing_since = Some(now);
        }
    }
}
