//! The load generator behind `livephase-cli serve-bench`.
//!
//! Replays the synthetic SPEC workloads' counter streams over M
//! concurrent connections, windowed so each connection keeps a batch of
//! samples in flight. Two drive modes:
//!
//! - **Threaded** (default): connections fan out with [`par_map`], the
//!   same sweep primitive the experiment drivers use, each replaying its
//!   round-robin share of the benchmarks over a blocking [`Client`].
//! - **Many-connection** ([`LoadGenConfig::many_conn`], CLI
//!   `serve-bench --reactor`): one thread multiplexes every connection
//!   over epoll with nonblocking [`ConnDriver`]s — each connection
//!   carries one benchmark stream, all sessions are held open
//!   simultaneously (handshakes complete before any replay starts, so
//!   the reported peak equals the requested connection count), and
//!   agreement is scored incrementally against a per-benchmark oracle
//!   trace, so 50k concurrent sessions need no per-connection decision
//!   storage.
//!
//! Reports throughput, decision latency percentiles, and — the point of
//! the exercise — per-stream decision agreement against an in-process
//! [`Manager`] run of the same stream, which must be **bit-exact**:
//! phase classification depends only on the Mem/Uop ratio the samples
//! carry, so a correct server cannot disagree with the oracle even once.

use crate::client::{Client, ClientError, ConnDriver};
use crate::engine::EngineConfig;
use crate::reactor::{Epoll, Events, Interest};
use crate::wire::Frame;
use livephase_core::predictor_from_spec;
use livephase_engine::DecisionEngine;
use livephase_governor::{par_map, Manager, ManagerConfig};
use livephase_pmsim::PlatformConfig;
use livephase_telemetry::Histogram;
use livephase_workloads::{counter_samples, spec, CounterSample};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;
// lint:allow(determinism): Instant times wall-clock throughput and latency for the
// load report; decision streams come from the server and never read the clock.
use std::time::{Duration, Instant};

/// What to replay, where, and how hard.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Server address, e.g. `127.0.0.1:9626`.
    pub addr: String,
    /// Concurrent connections to spread the benchmarks over.
    pub connections: usize,
    /// Benchmarks to replay; empty means the whole registry (all 33).
    pub benchmarks: Vec<String>,
    /// Intervals per benchmark (0 keeps each spec's default length).
    pub length: usize,
    /// Workload generation seed (shared with the oracle run).
    pub seed: u64,
    /// Predictor specification each session asks the server for.
    pub predictor: String,
    /// Samples kept in flight per connection between flushes.
    pub window: usize,
    /// Re-run each stream through an in-process manager and compare
    /// decisions.
    pub check_agreement: bool,
    /// Socket timeout for every client operation. In many-connection
    /// mode this is an inactivity watchdog: the run aborts when no frame
    /// arrives on any connection for this long.
    pub timeout: Duration,
    /// Drive every connection from one epoll loop instead of one thread
    /// per connection; each connection carries one benchmark stream and
    /// all sessions are held open concurrently.
    pub many_conn: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 8,
            benchmarks: Vec::new(),
            length: 120,
            seed: 42,
            predictor: "gpht:8:128".to_owned(),
            window: 64,
            check_agreement: true,
            timeout: Duration::from_secs(10),
            many_conn: false,
        }
    }
}

/// Why the load generator gave up.
#[derive(Debug)]
pub enum LoadGenError {
    /// A requested benchmark is not in the registry.
    UnknownBenchmark(String),
    /// The predictor specification does not parse.
    BadPredictor(String),
    /// A connection failed mid-replay.
    Client {
        /// Connection index that failed.
        connection: usize,
        /// The underlying failure.
        source: ClientError,
    },
    /// A stream got back a different number of decisions than it sent
    /// samples.
    ShortStream {
        /// Benchmark whose stream came up short.
        benchmark: String,
        /// Samples sent.
        sent: u64,
        /// Decisions received.
        received: u64,
    },
}

impl fmt::Display for LoadGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownBenchmark(name) => write!(f, "benchmark {name:?} is not registered"),
            Self::BadPredictor(spec) => write!(f, "predictor spec {spec:?} does not parse"),
            Self::Client { connection, source } => {
                write!(f, "connection {connection}: {source}")
            }
            Self::ShortStream {
                benchmark,
                sent,
                received,
            } => write!(
                f,
                "{benchmark}: sent {sent} samples but got {received} decisions"
            ),
        }
    }
}

impl std::error::Error for LoadGenError {}

/// Decision agreement of one replayed stream against its oracle run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Agreement {
    /// Decisions that matched the oracle.
    pub matched: u64,
    /// Decisions compared (the oracle trace length — one fewer than the
    /// sample count, the final decision being unobservable in-process).
    pub compared: u64,
}

impl Agreement {
    /// Whether every compared decision matched.
    #[must_use]
    pub fn exact(&self) -> bool {
        self.matched == self.compared
    }

    /// Agreement as a percentage.
    #[must_use]
    pub fn pct(&self) -> f64 {
        if self.compared == 0 {
            100.0
        } else {
            self.matched as f64 / self.compared as f64 * 100.0
        }
    }
}

/// One benchmark's replay outcome.
#[derive(Debug, Clone)]
pub struct BenchmarkOutcome {
    /// Benchmark name.
    pub name: String,
    /// Connection that carried the stream.
    pub connection: usize,
    /// Samples sent (== decisions received).
    pub samples: u64,
    /// Agreement vs the in-process oracle, when checked.
    pub agreement: Option<Agreement>,
}

/// Decision latency percentiles in microseconds (flush → decision read,
/// so queueing inside the window counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

/// The full load-generation report.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-benchmark outcomes, sorted by benchmark name.
    pub outcomes: Vec<BenchmarkOutcome>,
    /// Connections that carried traffic.
    pub connections: usize,
    /// Total samples sent (== decisions received).
    pub samples: u64,
    /// Wall-clock of the whole replay.
    pub elapsed: Duration,
    /// Decision latency distribution.
    pub latency: LatencyPercentiles,
    /// Most connections simultaneously open (many-connection mode; 0
    /// when the threaded driver ran, which does not measure it).
    pub peak_connections: usize,
}

impl LoadReport {
    /// Samples per second over the whole replay.
    #[must_use]
    pub fn samples_per_s(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.samples as f64 / s
        }
    }

    /// Whether every checked stream agreed bit-exactly with its oracle.
    #[must_use]
    pub fn all_exact(&self) -> bool {
        self.outcomes
            .iter()
            .filter_map(|o| o.agreement)
            .all(|a| a.exact())
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve-bench: {} benchmarks over {} connections",
            self.outcomes.len(),
            self.connections
        )?;
        writeln!(
            f,
            "  samples {}  decisions {}  elapsed {:.3} s  throughput {:.0} samples/s",
            self.samples,
            self.samples,
            self.elapsed.as_secs_f64(),
            self.samples_per_s()
        )?;
        writeln!(
            f,
            "  decision latency p50 {} µs  p90 {} µs  p99 {} µs  max {} µs",
            self.latency.p50_us, self.latency.p90_us, self.latency.p99_us, self.latency.max_us
        )?;
        if self.peak_connections > 0 {
            writeln!(f, "  concurrent connections peak {}", self.peak_connections)?;
        }
        let checked: Vec<&BenchmarkOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.agreement.is_some())
            .collect();
        if checked.is_empty() {
            writeln!(f, "  agreement: not checked")?;
        } else {
            let exact = checked
                .iter()
                .filter(|o| o.agreement.is_some_and(|a| a.exact()))
                .count();
            writeln!(
                f,
                "  agreement: {exact}/{} benchmarks bit-exact vs in-process manager",
                checked.len()
            )?;
            for o in &checked {
                let Some(a) = o.agreement else { continue };
                if !a.exact() {
                    writeln!(
                        f,
                        "    DIVERGED {}: {}/{} decisions matched ({:.2} %)",
                        o.name,
                        a.matched,
                        a.compared,
                        a.pct()
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// One stream assignment: a benchmark riding a connection as a pid.
#[derive(Debug, Clone)]
struct StreamPlan {
    spec: spec::BenchmarkSpec,
    pid: u32,
}

/// Runs the load. Benchmarks are dealt round-robin over the connections;
/// each connection replays its streams back-to-back, one pid per
/// benchmark.
///
/// # Errors
///
/// Configuration errors before any traffic; the first connection failure
/// otherwise.
pub fn run(config: &LoadGenConfig) -> Result<LoadReport, LoadGenError> {
    assert!(config.connections >= 1, "at least one connection");
    assert!(config.window >= 1, "window must hold at least one sample");
    if predictor_from_spec(&config.predictor).is_err() {
        return Err(LoadGenError::BadPredictor(config.predictor.clone()));
    }
    let specs = resolve_specs(config)?;
    if config.many_conn {
        return many::run(config, &specs);
    }

    let mut plans: Vec<Vec<StreamPlan>> = vec![Vec::new(); config.connections];
    for (i, spec) in specs.into_iter().enumerate() {
        // lint:allow(no-panic-path): i % connections < connections = plans.len()
        plans[i % config.connections].push(StreamPlan {
            spec,
            pid: u32::try_from(i).unwrap_or(u32::MAX - 1) + 1,
        });
    }

    let indexed: Vec<(usize, Vec<StreamPlan>)> = plans.into_iter().enumerate().collect();
    let started = Instant::now(); // lint:allow(determinism): wall-clock for the load report only
    let results = par_map(&indexed, |(conn, plan)| run_connection(config, *conn, plan));
    let elapsed = started.elapsed();

    let mut outcomes = Vec::new();
    // Per-connection latency histograms share the fixed global bucket
    // layout, so merging them is exact — no all-latencies Vec, no sort.
    let latencies = Histogram::new();
    let mut samples = 0u64;
    for result in results {
        let (mut conn_outcomes, conn_latencies) = result?;
        samples += conn_outcomes.iter().map(|o| o.samples).sum::<u64>();
        outcomes.append(&mut conn_outcomes);
        latencies.merge_from(&conn_latencies);
    }
    outcomes.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(LoadReport {
        outcomes,
        connections: config.connections,
        samples,
        elapsed,
        latency: percentiles(&latencies),
        peak_connections: 0,
    })
}

/// Resolves the configured benchmark names against the registry (empty
/// means everything) and applies the configured stream length.
fn resolve_specs(config: &LoadGenConfig) -> Result<Vec<spec::BenchmarkSpec>, LoadGenError> {
    let specs: Vec<spec::BenchmarkSpec> = if config.benchmarks.is_empty() {
        spec::registry()
    } else {
        config
            .benchmarks
            .iter()
            .map(|name| {
                spec::benchmark(name).ok_or_else(|| LoadGenError::UnknownBenchmark(name.clone()))
            })
            .collect::<Result<_, _>>()?
    };
    Ok(specs
        .into_iter()
        .map(|s| {
            if config.length > 0 {
                s.with_length(config.length)
            } else {
                s
            }
        })
        .collect())
}

type ConnResult = Result<(Vec<BenchmarkOutcome>, Histogram), LoadGenError>;

fn run_connection(config: &LoadGenConfig, conn: usize, plan: &[StreamPlan]) -> ConnResult {
    if plan.is_empty() {
        return Ok((Vec::new(), Histogram::new()));
    }
    let deployment = EngineConfig::pentium_m();
    let client_err = |source| LoadGenError::Client {
        connection: conn,
        source,
    };
    let mut client = Client::connect(
        config.addr.as_str(),
        conn as u64 + 1,
        deployment.platform(),
        &config.predictor,
        config.timeout,
    )
    .map_err(client_err)?;

    let mut outcomes = Vec::with_capacity(plan.len());
    let latencies_us = Histogram::new();
    for stream in plan {
        let samples: Vec<CounterSample> =
            counter_samples(stream.spec.stream(config.seed)).collect();
        let mut decisions: Vec<u8> = Vec::with_capacity(samples.len());
        let mut sent = 0usize;
        while decisions.len() < samples.len() {
            let batch_end = (sent + config.window).min(samples.len());
            // lint:allow(no-panic-path): sent <= batch_end <= samples.len() by the min above
            for s in &samples[sent..batch_end] {
                client
                    .queue_sample(stream.pid, s.uops, s.mem_transactions, s.core_cycles)
                    .map_err(client_err)?;
            }
            sent = batch_end;
            client.flush().map_err(client_err)?;
            let flushed_at = Instant::now(); // lint:allow(determinism): latency histogram only
            while decisions.len() < sent {
                let d = client.read_decision().map_err(client_err)?;
                latencies_us.record_saturating(flushed_at.elapsed().as_micros());
                decisions.push(d.op_point);
            }
        }
        let agreement = config
            .check_agreement
            .then(|| score_against_oracle(stream, config, &decisions));
        outcomes.push(BenchmarkOutcome {
            name: stream.spec.name().to_owned(),
            connection: conn,
            samples: decisions.len() as u64,
            agreement,
        });
    }
    client.goodbye().map_err(client_err)?;
    Ok((outcomes, latencies_us))
}

/// Re-runs the stream through an in-process [`Manager`] and counts how
/// many served decisions match its [`decision_trace`]. The trace is one
/// shorter than the sample count (the final decision never governs a
/// logged interval), so the last served decision goes uncompared.
///
/// [`decision_trace`]: livephase_governor::RunReport::decision_trace
fn score_against_oracle(
    stream: &StreamPlan,
    config: &LoadGenConfig,
    decisions: &[u8],
) -> Agreement {
    // The spec was validated before traffic; if a re-parse fails anyway,
    // report total divergence rather than panicking mid-replay.
    let Ok(engine) = DecisionEngine::from_spec(EngineConfig::pentium_m(), &config.predictor) else {
        return Agreement {
            matched: 0,
            compared: decisions.len() as u64,
        };
    };
    let oracle = Manager::with_engine(engine, ManagerConfig::pentium_m())
        .run(
            stream.spec.stream(config.seed),
            &PlatformConfig::pentium_m(),
        )
        .decision_trace();
    let matched = decisions
        .iter()
        .zip(&oracle)
        .filter(|(&got, &want)| usize::from(got) == want)
        .count();
    Agreement {
        matched: matched as u64,
        compared: oracle.len() as u64,
    }
}

/// Derives the report percentiles from the merged latency histogram:
/// constant space however long the replay, estimates within the
/// histogram's 1/32 relative-error bound, max exact.
fn percentiles(latencies_us: &Histogram) -> LatencyPercentiles {
    LatencyPercentiles {
        p50_us: latencies_us.quantile(0.50).unwrap_or(0),
        p90_us: latencies_us.quantile(0.90).unwrap_or(0),
        p99_us: latencies_us.quantile(0.99).unwrap_or(0),
        max_us: latencies_us.max().unwrap_or(0),
    }
}

/// The many-connection driver behind `serve-bench --reactor`: one thread
/// multiplexing every connection over epoll.
///
/// Each connection carries one benchmark stream (dealt round-robin from
/// the spec list), every session completes its handshake before any
/// replay starts — so the reported peak equals the requested connection
/// count — and agreement is scored incrementally against a shared
/// per-spec oracle trace, so memory scales with the spec list, not the
/// connection count.
mod many {
    use super::*;

    /// Connections allowed mid-handshake at once; paces the connect wave
    /// so the server's listen backlog never overflows into SYN retries.
    const CONNECT_WINDOW: usize = 256;

    /// Decision latency is sampled on this many connections; sampling
    /// every one of 50k conns would measure the sampler, not the server.
    const LATENCY_TRACKED_CONNS: usize = 256;

    /// Shared read scratch for every driver.
    const SCRATCH_BYTES: usize = 64 * 1024;

    /// Readiness events drained per wait.
    const EVENTS_PER_WAIT: usize = 1024;

    /// Wait timeout, so the connect pacing and the inactivity watchdog
    /// run even when no socket is ready.
    const WAIT_TICK: Duration = Duration::from_millis(50);

    /// Everything shared by the connections replaying one spec.
    struct SpecData {
        name: String,
        samples: Arc<Vec<CounterSample>>,
        oracle: Option<Arc<Vec<usize>>>,
    }

    /// Where one connection is in its replay.
    enum Stage {
        /// `Hello` sent; waiting for the ack.
        AwaitAck,
        /// Acked; holding the session open until every connection is.
        Hold,
        /// Replaying its sample window.
        Streaming,
        /// `Goodbye` queued; flush and close.
        Draining,
    }

    /// One multiplexed connection's replay state.
    struct ManyConn {
        driver: ConnDriver,
        conn: usize,
        spec_idx: usize,
        pid: u32,
        sent: usize,
        got: usize,
        matched: u64,
        stage: Stage,
        interest: Interest,
        flushed_at: Instant, // lint:allow(determinism): latency-report bookkeeping only
        track_latency: bool,
    }

    pub(super) fn run(
        config: &LoadGenConfig,
        specs: &[spec::BenchmarkSpec],
    ) -> Result<LoadReport, LoadGenError> {
        let total = config.connections;
        let io_err = |connection: usize, e: io::Error| LoadGenError::Client {
            connection,
            source: ClientError::Io(e),
        };
        let proto_err =
            |connection: usize, source: ClientError| LoadGenError::Client { connection, source };
        let deployment = EngineConfig::pentium_m();
        let data: Vec<SpecData> = specs
            .iter()
            .map(|s| SpecData {
                name: s.name().to_owned(),
                samples: Arc::new(counter_samples(s.stream(config.seed)).collect()),
                oracle: config
                    .check_agreement
                    .then(|| Arc::new(oracle_trace(s, config))),
            })
            .collect();
        if data.is_empty() || total == 0 {
            return Ok(LoadReport {
                outcomes: Vec::new(),
                connections: 0,
                samples: 0,
                elapsed: Duration::ZERO,
                latency: percentiles(&Histogram::new()),
                peak_connections: 0,
            });
        }

        let epoll = Epoll::new().map_err(|e| io_err(0, e))?;
        let mut events = Events::with_capacity(EVENTS_PER_WAIT);
        let mut conns: BTreeMap<RawFd, ManyConn> = BTreeMap::new();
        let mut scratch = vec![0u8; SCRATCH_BYTES];
        let mut outcomes: Vec<BenchmarkOutcome> = Vec::with_capacity(total);
        let latencies_us = Histogram::new();
        let mut samples_total = 0u64;
        let mut next_conn = 0usize;
        let mut pending_acks = 0usize;
        let mut acked = 0usize;
        let mut streaming = false;
        let mut peak = 0usize;
        let mut to_close: Vec<RawFd> = Vec::new();
        let started = Instant::now(); // lint:allow(determinism): wall-clock for the load report only
        let mut last_progress = started;

        while !(next_conn == total && conns.is_empty()) {
            // Pace the connect wave: at most CONNECT_WINDOW sessions
            // mid-handshake at once.
            while next_conn < total && pending_acks < CONNECT_WINDOW {
                let spec_idx = next_conn % data.len();
                let driver = ConnDriver::connect(
                    config.addr.as_str(),
                    next_conn as u64 + 1,
                    deployment.platform(),
                    &config.predictor,
                )
                .map_err(|e| io_err(next_conn, e))?;
                let fd = driver.as_raw_fd();
                let interest = if driver.pending() > 0 {
                    Interest::ReadWrite
                } else {
                    Interest::Read
                };
                epoll
                    .add(fd, interest, fd as u64)
                    .map_err(|e| io_err(next_conn, e))?;
                conns.insert(
                    fd,
                    ManyConn {
                        driver,
                        conn: next_conn,
                        spec_idx,
                        pid: u32::try_from(spec_idx).unwrap_or(u32::MAX - 1) + 1,
                        sent: 0,
                        got: 0,
                        matched: 0,
                        stage: Stage::AwaitAck,
                        interest,
                        flushed_at: started,
                        track_latency: next_conn < LATENCY_TRACKED_CONNS,
                    },
                );
                pending_acks += 1;
                next_conn += 1;
            }
            peak = peak.max(conns.len());
            if !streaming && next_conn == total && acked == total {
                // Every session is open and acked: the concurrency bar
                // is held; start the replay everywhere.
                streaming = true;
                let now = Instant::now(); // lint:allow(determinism): flush-latency reference only
                for (fd, st) in conns.iter_mut() {
                    st.stage = Stage::Streaming;
                    top_up(st, &data, config.window, now);
                    finish_if_done(st, &data, &mut outcomes, &mut samples_total);
                    sync(&epoll, *fd, st, &mut to_close);
                }
            }

            epoll
                .wait(&mut events, Some(WAIT_TICK))
                .map_err(|e| io_err(0, e))?;
            let now = Instant::now(); // lint:allow(determinism): one clock read per wake
            if !events.is_empty() {
                last_progress = now;
            }
            for ev in events.iter() {
                // Tokens are raw fds; both fit i32 on every Linux target.
                let fd = ev.token as RawFd;
                let Some(st) = conns.get_mut(&fd) else {
                    continue; // closed earlier this wake
                };
                if ev.readable || ev.hangup {
                    st.driver.fill(&mut scratch);
                }
                loop {
                    let frame = st
                        .driver
                        .next_frame()
                        .map_err(|source| proto_err(st.conn, source))?;
                    let Some(frame) = frame else { break };
                    match frame {
                        Frame::HelloAck { .. } if matches!(st.stage, Stage::AwaitAck) => {
                            st.stage = Stage::Hold;
                            pending_acks = pending_acks.saturating_sub(1);
                            acked += 1;
                        }
                        Frame::Decision { op_point, .. }
                            if matches!(st.stage, Stage::Streaming) =>
                        {
                            if let Some(want) = data
                                .get(st.spec_idx)
                                .and_then(|d| d.oracle.as_ref())
                                .and_then(|t| t.get(st.got))
                            {
                                if *want == usize::from(op_point) {
                                    st.matched += 1;
                                }
                            }
                            st.got += 1;
                            if st.track_latency {
                                latencies_us.record_saturating(
                                    now.duration_since(st.flushed_at).as_micros(),
                                );
                            }
                        }
                        Frame::Error { code, message } => {
                            return Err(proto_err(st.conn, ClientError::Refused { code, message }));
                        }
                        other => {
                            return Err(proto_err(
                                st.conn,
                                ClientError::Unexpected {
                                    wanted: "Decision",
                                    got: crate::server::frame_name(&other),
                                },
                            ));
                        }
                    }
                }
                if ev.writable {
                    st.driver.flush();
                }
                if matches!(st.stage, Stage::Streaming) {
                    top_up(st, &data, config.window, now);
                    finish_if_done(st, &data, &mut outcomes, &mut samples_total);
                }
                if st.driver.peer_gone() {
                    match st.stage {
                        Stage::Draining => to_close.push(fd),
                        Stage::Streaming => {
                            return Err(LoadGenError::ShortStream {
                                benchmark: data
                                    .get(st.spec_idx)
                                    .map_or_else(String::new, |d| d.name.clone()),
                                sent: st.sent as u64,
                                received: st.got as u64,
                            });
                        }
                        Stage::AwaitAck | Stage::Hold => {
                            return Err(io_err(
                                st.conn,
                                io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "server closed the connection during the handshake",
                                ),
                            ));
                        }
                    }
                } else {
                    sync(&epoll, fd, st, &mut to_close);
                }
            }
            for fd in to_close.drain(..) {
                if conns.remove(&fd).is_some() {
                    let _ = epoll.delete(fd);
                }
            }
            if !conns.is_empty() && now.duration_since(last_progress) > config.timeout {
                return Err(io_err(
                    0,
                    io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("no frames from the server within {:?}", config.timeout),
                    ),
                ));
            }
        }

        outcomes.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(LoadReport {
            outcomes,
            connections: total,
            samples: samples_total,
            elapsed: started.elapsed(),
            latency: percentiles(&latencies_us),
            peak_connections: peak,
        })
    }

    /// Keeps `window` samples in flight: queues and flushes the next
    /// slice of the spec's precomputed sample vector.
    // lint:allow(determinism): the timestamp feeds the latency report only
    fn top_up(st: &mut ManyConn, data: &[SpecData], window: usize, now: Instant) {
        let Some(samples) = data.get(st.spec_idx).map(|d| &d.samples) else {
            unreachable!("spec_idx is always constructed modulo data.len()")
        };
        let mut queued = false;
        while st.sent < samples.len() && st.sent - st.got < window {
            let Some(s) = samples.get(st.sent) else {
                unreachable!("sent < samples.len() by the loop condition")
            };
            st.driver.queue(&Frame::Sample {
                pid: st.pid,
                uops: s.uops,
                mem_trans: s.mem_transactions,
                tsc_delta: s.core_cycles,
            });
            st.sent += 1;
            queued = true;
        }
        if queued {
            st.driver.flush();
            st.flushed_at = now;
        }
    }

    /// When the stream is fully sent and fully answered, records the
    /// outcome and starts the goodbye.
    fn finish_if_done(
        st: &mut ManyConn,
        data: &[SpecData],
        outcomes: &mut Vec<BenchmarkOutcome>,
        samples_total: &mut u64,
    ) {
        let Some(d) = data.get(st.spec_idx) else {
            unreachable!("spec_idx is always constructed modulo data.len()")
        };
        if st.sent < d.samples.len() || st.got < st.sent {
            return;
        }
        outcomes.push(BenchmarkOutcome {
            name: d.name.clone(),
            connection: st.conn,
            samples: st.got as u64,
            agreement: d.oracle.as_ref().map(|t| Agreement {
                matched: st.matched,
                compared: t.len() as u64,
            }),
        });
        *samples_total += st.got as u64;
        st.driver.queue(&Frame::Goodbye);
        st.stage = Stage::Draining;
        st.driver.flush();
    }

    /// Reconciles a connection's epoll registration with what it now
    /// wants; a finished connection is queued for closing.
    fn sync(epoll: &Epoll, fd: RawFd, st: &mut ManyConn, to_close: &mut Vec<RawFd>) {
        let want = match st.stage {
            Stage::Draining => {
                if st.driver.pending() > 0 {
                    Some(Interest::Write)
                } else {
                    None
                }
            }
            Stage::AwaitAck | Stage::Hold | Stage::Streaming => Some(if st.driver.pending() > 0 {
                Interest::ReadWrite
            } else {
                Interest::Read
            }),
        };
        match want {
            None => to_close.push(fd),
            Some(want) => {
                if st.interest != want {
                    if epoll.modify(fd, want, fd as u64).is_ok() {
                        st.interest = want;
                    } else {
                        to_close.push(fd);
                    }
                }
            }
        }
    }

    /// The in-process decision trace every connection replaying `bench`
    /// is compared against. The predictor spec was validated before any
    /// traffic, so the engine-construction fallback (an empty trace,
    /// comparing nothing) is unreachable in practice.
    fn oracle_trace(bench: &spec::BenchmarkSpec, config: &LoadGenConfig) -> Vec<usize> {
        let Ok(engine) = DecisionEngine::from_spec(EngineConfig::pentium_m(), &config.predictor)
        else {
            return Vec::new();
        };
        Manager::with_engine(engine, ManagerConfig::pentium_m())
            .run(bench.stream(config.seed), &PlatformConfig::pentium_m())
            .decision_trace()
    }
}
