//! The load generator behind `livephase-cli serve-bench`.
//!
//! Replays the synthetic SPEC workloads' counter streams over M
//! concurrent connections (fanned out with [`par_map`], the same sweep
//! primitive the experiment drivers use), windowed so each connection
//! keeps a batch of samples in flight. Reports throughput, decision
//! latency percentiles, and — the point of the exercise — per-benchmark
//! decision agreement against an in-process [`Manager`] run of the same
//! stream, which must be **bit-exact**: phase classification depends only
//! on the Mem/Uop ratio the samples carry, so a correct server cannot
//! disagree with the oracle even once.

use crate::client::{Client, ClientError};
use crate::engine::EngineConfig;
use livephase_core::predictor_from_spec;
use livephase_engine::DecisionEngine;
use livephase_governor::{par_map, Manager, ManagerConfig};
use livephase_pmsim::PlatformConfig;
use livephase_telemetry::Histogram;
use livephase_workloads::{counter_samples, spec, CounterSample};
use std::fmt;
// lint:allow(determinism): Instant times wall-clock throughput and latency for the
// load report; decision streams come from the server and never read the clock.
use std::time::{Duration, Instant};

/// What to replay, where, and how hard.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Server address, e.g. `127.0.0.1:9626`.
    pub addr: String,
    /// Concurrent connections to spread the benchmarks over.
    pub connections: usize,
    /// Benchmarks to replay; empty means the whole registry (all 33).
    pub benchmarks: Vec<String>,
    /// Intervals per benchmark (0 keeps each spec's default length).
    pub length: usize,
    /// Workload generation seed (shared with the oracle run).
    pub seed: u64,
    /// Predictor specification each session asks the server for.
    pub predictor: String,
    /// Samples kept in flight per connection between flushes.
    pub window: usize,
    /// Re-run each stream through an in-process manager and compare
    /// decisions.
    pub check_agreement: bool,
    /// Socket timeout for every client operation.
    pub timeout: Duration,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 8,
            benchmarks: Vec::new(),
            length: 120,
            seed: 42,
            predictor: "gpht:8:128".to_owned(),
            window: 64,
            check_agreement: true,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Why the load generator gave up.
#[derive(Debug)]
pub enum LoadGenError {
    /// A requested benchmark is not in the registry.
    UnknownBenchmark(String),
    /// The predictor specification does not parse.
    BadPredictor(String),
    /// A connection failed mid-replay.
    Client {
        /// Connection index that failed.
        connection: usize,
        /// The underlying failure.
        source: ClientError,
    },
    /// A stream got back a different number of decisions than it sent
    /// samples.
    ShortStream {
        /// Benchmark whose stream came up short.
        benchmark: String,
        /// Samples sent.
        sent: u64,
        /// Decisions received.
        received: u64,
    },
}

impl fmt::Display for LoadGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownBenchmark(name) => write!(f, "benchmark {name:?} is not registered"),
            Self::BadPredictor(spec) => write!(f, "predictor spec {spec:?} does not parse"),
            Self::Client { connection, source } => {
                write!(f, "connection {connection}: {source}")
            }
            Self::ShortStream {
                benchmark,
                sent,
                received,
            } => write!(
                f,
                "{benchmark}: sent {sent} samples but got {received} decisions"
            ),
        }
    }
}

impl std::error::Error for LoadGenError {}

/// Decision agreement of one replayed stream against its oracle run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Agreement {
    /// Decisions that matched the oracle.
    pub matched: u64,
    /// Decisions compared (the oracle trace length — one fewer than the
    /// sample count, the final decision being unobservable in-process).
    pub compared: u64,
}

impl Agreement {
    /// Whether every compared decision matched.
    #[must_use]
    pub fn exact(&self) -> bool {
        self.matched == self.compared
    }

    /// Agreement as a percentage.
    #[must_use]
    pub fn pct(&self) -> f64 {
        if self.compared == 0 {
            100.0
        } else {
            self.matched as f64 / self.compared as f64 * 100.0
        }
    }
}

/// One benchmark's replay outcome.
#[derive(Debug, Clone)]
pub struct BenchmarkOutcome {
    /// Benchmark name.
    pub name: String,
    /// Connection that carried the stream.
    pub connection: usize,
    /// Samples sent (== decisions received).
    pub samples: u64,
    /// Agreement vs the in-process oracle, when checked.
    pub agreement: Option<Agreement>,
}

/// Decision latency percentiles in microseconds (flush → decision read,
/// so queueing inside the window counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

/// The full load-generation report.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Per-benchmark outcomes, sorted by benchmark name.
    pub outcomes: Vec<BenchmarkOutcome>,
    /// Connections that carried traffic.
    pub connections: usize,
    /// Total samples sent (== decisions received).
    pub samples: u64,
    /// Wall-clock of the whole replay.
    pub elapsed: Duration,
    /// Decision latency distribution.
    pub latency: LatencyPercentiles,
}

impl LoadReport {
    /// Samples per second over the whole replay.
    #[must_use]
    pub fn samples_per_s(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.samples as f64 / s
        }
    }

    /// Whether every checked stream agreed bit-exactly with its oracle.
    #[must_use]
    pub fn all_exact(&self) -> bool {
        self.outcomes
            .iter()
            .filter_map(|o| o.agreement)
            .all(|a| a.exact())
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve-bench: {} benchmarks over {} connections",
            self.outcomes.len(),
            self.connections
        )?;
        writeln!(
            f,
            "  samples {}  decisions {}  elapsed {:.3} s  throughput {:.0} samples/s",
            self.samples,
            self.samples,
            self.elapsed.as_secs_f64(),
            self.samples_per_s()
        )?;
        writeln!(
            f,
            "  decision latency p50 {} µs  p90 {} µs  p99 {} µs  max {} µs",
            self.latency.p50_us, self.latency.p90_us, self.latency.p99_us, self.latency.max_us
        )?;
        let checked: Vec<&BenchmarkOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.agreement.is_some())
            .collect();
        if checked.is_empty() {
            writeln!(f, "  agreement: not checked")?;
        } else {
            let exact = checked
                .iter()
                .filter(|o| o.agreement.is_some_and(|a| a.exact()))
                .count();
            writeln!(
                f,
                "  agreement: {exact}/{} benchmarks bit-exact vs in-process manager",
                checked.len()
            )?;
            for o in &checked {
                let Some(a) = o.agreement else { continue };
                if !a.exact() {
                    writeln!(
                        f,
                        "    DIVERGED {}: {}/{} decisions matched ({:.2} %)",
                        o.name,
                        a.matched,
                        a.compared,
                        a.pct()
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// One stream assignment: a benchmark riding a connection as a pid.
#[derive(Debug, Clone)]
struct StreamPlan {
    spec: spec::BenchmarkSpec,
    pid: u32,
}

/// Runs the load. Benchmarks are dealt round-robin over the connections;
/// each connection replays its streams back-to-back, one pid per
/// benchmark.
///
/// # Errors
///
/// Configuration errors before any traffic; the first connection failure
/// otherwise.
pub fn run(config: &LoadGenConfig) -> Result<LoadReport, LoadGenError> {
    assert!(config.connections >= 1, "at least one connection");
    assert!(config.window >= 1, "window must hold at least one sample");
    if predictor_from_spec(&config.predictor).is_err() {
        return Err(LoadGenError::BadPredictor(config.predictor.clone()));
    }
    let specs: Vec<spec::BenchmarkSpec> = if config.benchmarks.is_empty() {
        spec::registry()
    } else {
        config
            .benchmarks
            .iter()
            .map(|name| {
                spec::benchmark(name).ok_or_else(|| LoadGenError::UnknownBenchmark(name.clone()))
            })
            .collect::<Result<_, _>>()?
    };

    let mut plans: Vec<Vec<StreamPlan>> = vec![Vec::new(); config.connections];
    for (i, s) in specs.into_iter().enumerate() {
        let spec = if config.length > 0 {
            s.with_length(config.length)
        } else {
            s
        };
        // lint:allow(no-panic-path): i % connections < connections = plans.len()
        plans[i % config.connections].push(StreamPlan {
            spec,
            pid: u32::try_from(i).unwrap_or(u32::MAX - 1) + 1,
        });
    }

    let indexed: Vec<(usize, Vec<StreamPlan>)> = plans.into_iter().enumerate().collect();
    let started = Instant::now(); // lint:allow(determinism): wall-clock for the load report only
    let results = par_map(&indexed, |(conn, plan)| run_connection(config, *conn, plan));
    let elapsed = started.elapsed();

    let mut outcomes = Vec::new();
    // Per-connection latency histograms share the fixed global bucket
    // layout, so merging them is exact — no all-latencies Vec, no sort.
    let latencies = Histogram::new();
    let mut samples = 0u64;
    for result in results {
        let (mut conn_outcomes, conn_latencies) = result?;
        samples += conn_outcomes.iter().map(|o| o.samples).sum::<u64>();
        outcomes.append(&mut conn_outcomes);
        latencies.merge_from(&conn_latencies);
    }
    outcomes.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(LoadReport {
        outcomes,
        connections: config.connections,
        samples,
        elapsed,
        latency: percentiles(&latencies),
    })
}

type ConnResult = Result<(Vec<BenchmarkOutcome>, Histogram), LoadGenError>;

fn run_connection(config: &LoadGenConfig, conn: usize, plan: &[StreamPlan]) -> ConnResult {
    if plan.is_empty() {
        return Ok((Vec::new(), Histogram::new()));
    }
    let deployment = EngineConfig::pentium_m();
    let client_err = |source| LoadGenError::Client {
        connection: conn,
        source,
    };
    let mut client = Client::connect(
        config.addr.as_str(),
        conn as u64 + 1,
        deployment.platform(),
        &config.predictor,
        config.timeout,
    )
    .map_err(client_err)?;

    let mut outcomes = Vec::with_capacity(plan.len());
    let latencies_us = Histogram::new();
    for stream in plan {
        let samples: Vec<CounterSample> =
            counter_samples(stream.spec.stream(config.seed)).collect();
        let mut decisions: Vec<u8> = Vec::with_capacity(samples.len());
        let mut sent = 0usize;
        while decisions.len() < samples.len() {
            let batch_end = (sent + config.window).min(samples.len());
            // lint:allow(no-panic-path): sent <= batch_end <= samples.len() by the min above
            for s in &samples[sent..batch_end] {
                client
                    .queue_sample(stream.pid, s.uops, s.mem_transactions, s.core_cycles)
                    .map_err(client_err)?;
            }
            sent = batch_end;
            client.flush().map_err(client_err)?;
            let flushed_at = Instant::now(); // lint:allow(determinism): latency histogram only
            while decisions.len() < sent {
                let d = client.read_decision().map_err(client_err)?;
                latencies_us
                    .record(u64::try_from(flushed_at.elapsed().as_micros()).unwrap_or(u64::MAX));
                decisions.push(d.op_point);
            }
        }
        let agreement = config
            .check_agreement
            .then(|| score_against_oracle(stream, config, &decisions));
        outcomes.push(BenchmarkOutcome {
            name: stream.spec.name().to_owned(),
            connection: conn,
            samples: decisions.len() as u64,
            agreement,
        });
    }
    client.goodbye().map_err(client_err)?;
    Ok((outcomes, latencies_us))
}

/// Re-runs the stream through an in-process [`Manager`] and counts how
/// many served decisions match its [`decision_trace`]. The trace is one
/// shorter than the sample count (the final decision never governs a
/// logged interval), so the last served decision goes uncompared.
///
/// [`decision_trace`]: livephase_governor::RunReport::decision_trace
fn score_against_oracle(
    stream: &StreamPlan,
    config: &LoadGenConfig,
    decisions: &[u8],
) -> Agreement {
    // The spec was validated before traffic; if a re-parse fails anyway,
    // report total divergence rather than panicking mid-replay.
    let Ok(engine) = DecisionEngine::from_spec(EngineConfig::pentium_m(), &config.predictor) else {
        return Agreement {
            matched: 0,
            compared: decisions.len() as u64,
        };
    };
    let oracle = Manager::with_engine(engine, ManagerConfig::pentium_m())
        .run(
            stream.spec.stream(config.seed),
            &PlatformConfig::pentium_m(),
        )
        .decision_trace();
    let matched = decisions
        .iter()
        .zip(&oracle)
        .filter(|(&got, &want)| usize::from(got) == want)
        .count();
    Agreement {
        matched: matched as u64,
        compared: oracle.len() as u64,
    }
}

/// Derives the report percentiles from the merged latency histogram:
/// constant space however long the replay, estimates within the
/// histogram's 1/32 relative-error bound, max exact.
fn percentiles(latencies_us: &Histogram) -> LatencyPercentiles {
    LatencyPercentiles {
        p50_us: latencies_us.quantile(0.50).unwrap_or(0),
        p90_us: latencies_us.quantile(0.90).unwrap_or(0),
        p99_us: latencies_us.quantile(0.99).unwrap_or(0),
        max_us: latencies_us.max().unwrap_or(0),
    }
}
