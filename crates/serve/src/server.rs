//! The sharded TCP phase-prediction server.
//!
//! One I/O engine drives every connection: N shard threads, each
//! running a nonblocking epoll readiness loop over the listener and
//! every connection it accepted (see [`crate::shard`] and
//! [`crate::conn`]). One thread owns thousands of sockets; sessions
//! never cross threads, so each shard exclusively owns the predictor
//! state of the sessions hashed onto it — there is no lock around any
//! GPHT. (The original thread-per-connection blocking engine served one
//! release as the reactor's equivalence oracle and has been removed;
//! the reactor tests now check bit-exactness directly against the
//! in-process [`crate::engine::SessionState`] decision path.)
//!
//! Robustness: every connection carries read/write timeouts; a
//! malformed or oversized frame earns the sender a terminal
//! [`Frame::Error`] and poisons **only that connection** — its shard
//! and every other session keep running. Connections whose outbound
//! queue exceeds [`ServerConfig::max_outbound_bytes`] are shed with a
//! typed slow-consumer error. Shutdown is flag-based:
//! [`ServerHandle::shutdown`] (or `exit_after_conns` draining the last
//! connection) raises the flag and pokes the listener with a loopback
//! connect; connections are drained — in-flight samples still get their
//! decisions and queued frames flush — before sockets close.

use crate::engine::EngineConfig;
use crate::wire::{Frame, StatsSnapshot};
use livephase_telemetry::{trace_event, Counter, Gauge, Histogram, Level};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tracing target for every event this module emits.
const TRACE: &str = "serve::server";

/// Process-global instrument handles for the connection lifecycle; shard
/// threads hold their own per-shard handles (see [`ShardMetrics`]).
/// Created once per server, recorded lock-free ever after.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    pub(crate) connections_total: Arc<Counter>,
    pub(crate) connections_active: Arc<Gauge>,
    pub(crate) rejected_total: Arc<Counter>,
    pub(crate) poisoned_total: Arc<Counter>,
    pub(crate) frame_encode_us: Arc<Histogram>,
}

impl ServeMetrics {
    fn new() -> Self {
        let reg = livephase_telemetry::global();
        Self {
            connections_total: reg.counter(
                "serve_connections_total",
                "Connections admitted past the accept gate since start.",
                &[],
            ),
            connections_active: reg.gauge(
                "serve_connections_active",
                "Connections currently open.",
                &[],
            ),
            rejected_total: reg.counter(
                "serve_connections_rejected_total",
                "Connections refused at the max-conns accept gate.",
                &[],
            ),
            poisoned_total: reg.counter(
                "serve_connections_poisoned_total",
                "Connections terminated for protocol violations or idle timeouts.",
                &[],
            ),
            frame_encode_us: reg.histogram(
                "serve_frame_encode_us",
                "Frame encode latency in microseconds (writer threads).",
                &[],
            ),
        }
    }
}

/// Per-shard instrument handles, owned by one shard thread.
pub(crate) struct ShardMetrics {
    pub(crate) sessions: Arc<Gauge>,
    pub(crate) samples_total: Arc<Counter>,
    pub(crate) decision_us: Arc<Histogram>,
    pub(crate) power_estimate_mw: Arc<Gauge>,
}

impl ShardMetrics {
    pub(crate) fn new(index: usize) -> Self {
        let reg = livephase_telemetry::global();
        let shard = index.to_string();
        let label: &[(&str, &str)] = &[("shard", &shard)];
        Self {
            sessions: reg.gauge(
                "serve_shard_sessions",
                "Sessions whose predictor state this shard owns.",
                label,
            ),
            samples_total: reg.counter(
                "serve_shard_samples_total",
                "Counter samples this shard has ingested.",
                label,
            ),
            // The governor-level decision series (governor_decisions_total,
            // governor_decision_us, predictor hits/misses) are recorded by
            // the DecisionEngine inside each SessionState — the shard
            // pipeline IS the governor decision path — so only the
            // shard-labeled view lives here.
            decision_us: reg.histogram(
                "serve_shard_decision_us",
                "Classify-predict-translate latency in microseconds.",
                label,
            ),
            // Priced by the configured power backend's worst-case bound —
            // the same pessimistic cost the tenants arbiter charges — so a
            // dashboard can overlay "what the fleet could draw" on top of
            // decision throughput without any per-sample model evaluation.
            power_estimate_mw: reg.gauge(
                "serve_power_estimate_mw",
                "Worst-case power bound of this shard's latest decided \
                 operating point, in milliwatts.",
                label,
            ),
        }
    }
}

/// Everything a server needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of shard owner threads.
    pub shards: usize,
    /// Accept gate: connections beyond this many concurrent sessions are
    /// refused with [`crate::wire::ErrorCode::Busy`].
    pub max_conns: usize,
    /// Per-connection socket read timeout; an idle connection is closed
    /// with [`crate::wire::ErrorCode::IdleTimeout`] after this long, and shutdown is
    /// noticed at most this late.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Initiate shutdown once this many connections have been admitted
    /// *and* all of them have finished — lets scripted smoke tests run a
    /// bounded session and get a clean exit.
    pub exit_after_conns: Option<u64>,
    /// Phase map, translation table and platform name served.
    pub engine: EngineConfig,
    /// Power backend pricing the per-shard `serve_power_estimate_mw`
    /// gauge: each decided operating point is costed at the backend's
    /// declared worst-case bound, precomputed per shard so the hot path
    /// only indexes a table.
    pub power: livephase_pmsim::PowerModelKind,
    /// A connection whose un-drained outbound queue exceeds this many
    /// bytes is shed with a typed slow-consumer error.
    pub max_outbound_bytes: usize,
    /// Cap each accepted socket's kernel send buffer (`SO_SNDBUF`) to
    /// this many bytes. `None` keeps the kernel default; tests set it
    /// low to make backpressure prompt.
    pub sndbuf: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            max_conns: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            exit_after_conns: None,
            engine: EngineConfig::pentium_m(),
            power: livephase_pmsim::PowerModelKind::default(),
            max_outbound_bytes: 256 * 1024,
            sndbuf: None,
        }
    }
}

/// Final counters reported when the server exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections admitted past the accept gate.
    pub accepted: u64,
    /// Connections refused with [`crate::wire::ErrorCode::Busy`].
    pub rejected: u64,
    /// Connections terminated for malformed frames, protocol violations
    /// or idle timeouts.
    pub poisoned: u64,
    /// Samples ingested.
    pub samples: u64,
    /// Decisions computed.
    pub decisions: u64,
}

/// Counters shared by every thread of a running server.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    pub(crate) accepted: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) poisoned: AtomicU64,
    pub(crate) samples: AtomicU64,
    pub(crate) decisions: AtomicU64,
    pub(crate) processes: AtomicU64,
    pub(crate) metrics: ServeMetrics,
}

impl Shared {
    fn new() -> Self {
        Self {
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            processes: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
        }
    }

    pub(crate) fn snapshot(&self, shards: u32) -> StatsSnapshot {
        StatsSnapshot {
            samples: self.samples.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            connections: self.accepted.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            processes: self.processes.load(Ordering::Relaxed),
            shards,
        }
    }

    pub(crate) fn summary(&self) -> ServerSummary {
        ServerSummary {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
        }
    }
}

/// A running server: its bound address plus the means to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Raises the shutdown flag, pokes the listener awake, and waits for
    /// every connection to drain.
    ///
    /// # Panics
    ///
    /// Panics if a server thread itself panicked.
    pub fn shutdown(self) -> ServerSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock whichever thread is waiting on the listener; the flag
        // is checked before admitting.
        drop(TcpStream::connect(self.local_addr));
        self.join()
    }

    /// Waits for the server to exit on its own (`exit_after_conns`).
    ///
    /// # Panics
    ///
    /// Panics if a server thread itself panicked.
    pub fn join(self) -> ServerSummary {
        for t in self.threads {
            t.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
        let summary = self.shared.summary();
        trace_event!(
            Level::Info,
            TRACE,
            "server stopped",
            accepted = summary.accepted,
            samples = summary.samples,
            decisions = summary.decisions,
            poisoned = summary.poisoned
        );
        summary
    }
}

/// Binds `config.addr` and spawns the shard reactor threads; returns
/// once the port is bound, so [`ServerHandle::local_addr`] is
/// immediately connectable.
///
/// # Errors
///
/// Propagates the bind failure, listener clone failures and shard
/// spawn failures.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    assert!(config.shards > 0, "a server has at least one shard");
    assert!(
        config.max_conns > 0,
        "a server admits at least one connection"
    );
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared::new());
    let threads = crate::shard::spawn_shards(listener, &config, &shared)?;
    Ok(ServerHandle {
        local_addr,
        shared,
        threads,
    })
}

pub(crate) fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "Hello",
        Frame::HelloAck { .. } => "HelloAck",
        Frame::Sample { .. } => "Sample",
        Frame::Decision { .. } => "Decision",
        Frame::StatsRequest => "StatsRequest",
        Frame::Stats(_) => "Stats",
        Frame::Error { .. } => "Error",
        Frame::Goodbye => "Goodbye",
        Frame::MetricsRequest => "MetricsRequest",
        Frame::Metrics { .. } => "Metrics",
    }
}
