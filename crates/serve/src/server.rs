//! The sharded TCP phase-prediction server.
//!
//! Two I/O modes share this module's configuration, counters and
//! summary, selected by [`ServerConfig::mode`]:
//!
//! - [`ServeMode::Reactor`] (default) — N shard threads, each running a
//!   nonblocking epoll readiness loop over the listener and every
//!   connection it accepted (see [`crate::shard`] and [`crate::conn`]).
//!   One thread owns thousands of sockets; sessions never cross threads.
//! - [`ServeMode::Blocking`] — the original thread-per-connection model,
//!   retained for one release as the reactor's equivalence oracle (see
//!   the `--blocking` deprecation note in the README):
//!
//! ```text
//! acceptor ── spawns ──► connection reader ──► shard 0 owner ─┐
//!                        connection reader ──► shard 1 owner ─┤ decisions
//!                        ...                   ...            │
//!                        connection writer ◄──────────────────┘
//! ```
//!
//! In blocking mode each of the N **shard owner** threads exclusively
//! owns the predictor state ([`SessionState`]) of the sessions hashed
//! onto it — there is no lock around any GPHT. Connections are assigned
//! to shards by [`shard_for`] over the client id from `Hello`. A
//! connection's reader thread forwards samples to its shard over an mpsc
//! channel; the shard computes decisions and queues them on the
//! connection's **writer** thread, which drains its queue into a
//! `BufWriter` and flushes once per batch — so decisions are batched per
//! socket flush, not written one syscall each. mpsc channels are FIFO
//! per sender, so a session's decisions come back in sample order.
//!
//! Robustness (both modes): every connection carries read/write
//! timeouts; a malformed or oversized frame earns the sender a terminal
//! [`Frame::Error`] and poisons **only that connection** — its shard and
//! every other session keep running. The reactor additionally sheds
//! connections whose outbound queue exceeds
//! [`ServerConfig::max_outbound_bytes`] with a typed
//! [`ErrorCode::SlowConsumer`]. Shutdown is flag-based:
//! [`ServerHandle::shutdown`] (or `exit_after_conns` draining the last
//! connection) raises the flag and pokes the listener with a loopback
//! connect; connections are drained — in-flight samples still get their
//! decisions and queued frames flush — before sockets close.

use crate::engine::{shard_for, Decision, EngineConfig, Sample, SessionState};
use crate::wire::{
    self, ErrorCode, Frame, FrameError, StatsSnapshot, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use livephase_telemetry::{trace_event, Counter, Gauge, Histogram, Level};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
// lint:allow(determinism): Instant feeds uptime and batch-latency telemetry; the
// decision path itself is a pure function of the sample stream.
use std::time::{Duration, Instant};

/// Tracing target for every event this module emits.
const TRACE: &str = "serve::server";

/// Process-global instrument handles for the connection lifecycle; shard
/// threads hold their own per-shard handles (see [`ShardMetrics`]).
/// Created once per server, recorded lock-free ever after.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    pub(crate) connections_total: Arc<Counter>,
    pub(crate) connections_active: Arc<Gauge>,
    pub(crate) rejected_total: Arc<Counter>,
    pub(crate) poisoned_total: Arc<Counter>,
    pub(crate) frame_encode_us: Arc<Histogram>,
}

impl ServeMetrics {
    fn new() -> Self {
        let reg = livephase_telemetry::global();
        Self {
            connections_total: reg.counter(
                "serve_connections_total",
                "Connections admitted past the accept gate since start.",
                &[],
            ),
            connections_active: reg.gauge(
                "serve_connections_active",
                "Connections currently open.",
                &[],
            ),
            rejected_total: reg.counter(
                "serve_connections_rejected_total",
                "Connections refused at the max-conns accept gate.",
                &[],
            ),
            poisoned_total: reg.counter(
                "serve_connections_poisoned_total",
                "Connections terminated for protocol violations or idle timeouts.",
                &[],
            ),
            frame_encode_us: reg.histogram(
                "serve_frame_encode_us",
                "Frame encode latency in microseconds (writer threads).",
                &[],
            ),
        }
    }
}

/// Per-shard instrument handles, owned by one shard thread.
pub(crate) struct ShardMetrics {
    pub(crate) sessions: Arc<Gauge>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) samples_total: Arc<Counter>,
    pub(crate) decision_us: Arc<Histogram>,
}

impl ShardMetrics {
    pub(crate) fn new(index: usize) -> Self {
        let reg = livephase_telemetry::global();
        let shard = index.to_string();
        let label: &[(&str, &str)] = &[("shard", &shard)];
        Self {
            sessions: reg.gauge(
                "serve_shard_sessions",
                "Sessions whose predictor state this shard owns.",
                label,
            ),
            queue_depth: reg.gauge(
                "serve_shard_queue_depth",
                "Messages queued to the shard and not yet processed.",
                label,
            ),
            samples_total: reg.counter(
                "serve_shard_samples_total",
                "Counter samples this shard has ingested.",
                label,
            ),
            // The governor-level decision series (governor_decisions_total,
            // governor_decision_us, predictor hits/misses) are recorded by
            // the DecisionEngine inside each SessionState — the shard
            // pipeline IS the governor decision path — so only the
            // shard-labeled view lives here.
            decision_us: reg.histogram(
                "serve_shard_decision_us",
                "Classify-predict-translate latency in microseconds.",
                label,
            ),
        }
    }
}

/// Which I/O engine drives the server's connections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// Nonblocking epoll readiness loops, one per shard thread, each
    /// owning thousands of sockets — the default.
    #[default]
    Reactor,
    /// Thread-per-connection blocking I/O — the original model, kept for
    /// one release as the reactor's equivalence oracle and slated for
    /// removal (see the README's `--blocking` deprecation note).
    Blocking,
}

/// Everything a server needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of shard owner threads.
    pub shards: usize,
    /// Accept gate: connections beyond this many concurrent sessions are
    /// refused with [`ErrorCode::Busy`].
    pub max_conns: usize,
    /// Per-connection socket read timeout; an idle connection is closed
    /// with [`ErrorCode::IdleTimeout`] after this long, and shutdown is
    /// noticed at most this late.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Initiate shutdown once this many connections have been admitted
    /// *and* all of them have finished — lets scripted smoke tests run a
    /// bounded session and get a clean exit.
    pub exit_after_conns: Option<u64>,
    /// Phase map, translation table and platform name served.
    pub engine: EngineConfig,
    /// Which I/O engine drives connections.
    pub mode: ServeMode,
    /// Reactor only: a connection whose un-drained outbound queue
    /// exceeds this many bytes is shed with [`ErrorCode::SlowConsumer`].
    pub max_outbound_bytes: usize,
    /// Reactor only: cap each accepted socket's kernel send buffer
    /// (`SO_SNDBUF`) to this many bytes. `None` keeps the kernel
    /// default; tests set it low to make backpressure prompt.
    pub sndbuf: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            shards: 4,
            max_conns: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            exit_after_conns: None,
            engine: EngineConfig::pentium_m(),
            mode: ServeMode::default(),
            max_outbound_bytes: 256 * 1024,
            sndbuf: None,
        }
    }
}

/// Final counters reported when the server exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections admitted past the accept gate.
    pub accepted: u64,
    /// Connections refused with [`ErrorCode::Busy`].
    pub rejected: u64,
    /// Connections terminated for malformed frames, protocol violations
    /// or idle timeouts.
    pub poisoned: u64,
    /// Samples ingested.
    pub samples: u64,
    /// Decisions computed.
    pub decisions: u64,
}

/// Counters shared by every thread of a running server.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    pub(crate) accepted: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) poisoned: AtomicU64,
    pub(crate) samples: AtomicU64,
    pub(crate) decisions: AtomicU64,
    pub(crate) processes: AtomicU64,
    pub(crate) metrics: ServeMetrics,
}

impl Shared {
    fn new() -> Self {
        Self {
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            processes: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
        }
    }

    pub(crate) fn snapshot(&self, shards: u32) -> StatsSnapshot {
        StatsSnapshot {
            samples: self.samples.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            connections: self.accepted.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed),
            processes: self.processes.load(Ordering::Relaxed),
            shards,
        }
    }

    pub(crate) fn summary(&self) -> ServerSummary {
        ServerSummary {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
        }
    }
}

/// What a connection reader sends its shard owner.
enum ShardMsg {
    /// A `Hello` passed transport checks; validate the predictor spec and
    /// answer `HelloAck` or `Error{BadConfig}` on `reply`.
    Register {
        conn: u64,
        predictor: String,
        /// Protocol version the session negotiated (echoed in
        /// `HelloAck`).
        version: u16,
        reply: mpsc::Sender<Frame>,
    },
    /// One counter sample for `conn`'s session.
    Sample {
        conn: u64,
        pid: u32,
        uops: u64,
        mem_trans: u64,
    },
    /// The connection is gone; drop its session state.
    Unregister { conn: u64 },
}

/// A running server: its bound address plus the means to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Raises the shutdown flag, pokes the listener awake, and waits for
    /// every connection to drain.
    ///
    /// # Panics
    ///
    /// Panics if a server thread itself panicked.
    pub fn shutdown(self) -> ServerSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock whichever thread is waiting on the listener; the flag
        // is checked before admitting.
        drop(TcpStream::connect(self.local_addr));
        self.join()
    }

    /// Waits for the server to exit on its own (`exit_after_conns`).
    ///
    /// # Panics
    ///
    /// Panics if a server thread itself panicked.
    pub fn join(self) -> ServerSummary {
        for t in self.threads {
            t.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
        let summary = self.shared.summary();
        trace_event!(
            Level::Info,
            TRACE,
            "server stopped",
            accepted = summary.accepted,
            samples = summary.samples,
            decisions = summary.decisions,
            poisoned = summary.poisoned
        );
        summary
    }
}

/// Binds `config.addr` and spawns the server threads for the configured
/// [`ServeMode`]; returns once the port is bound, so
/// [`ServerHandle::local_addr`] is immediately connectable.
///
/// # Errors
///
/// Propagates the bind failure (and, for the reactor, listener clone or
/// shard spawn failures).
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    assert!(config.shards > 0, "a server has at least one shard");
    assert!(
        config.max_conns > 0,
        "a server admits at least one connection"
    );
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared::new());
    let threads = match config.mode {
        ServeMode::Reactor => crate::shard::spawn_shards(listener, &config, &shared)?,
        ServeMode::Blocking => {
            let shared_for_acceptor = Arc::clone(&shared);
            vec![std::thread::Builder::new()
                .name("serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &config, &shared_for_acceptor))?]
        }
    };
    Ok(ServerHandle {
        local_addr,
        shared,
        threads,
    })
}

/// The context a connection thread works in.
struct ConnCtx {
    shared: Arc<Shared>,
    shard_txs: Vec<mpsc::Sender<ShardMsg>>,
    engine: Arc<EngineConfig>,
    read_timeout: Duration,
    write_timeout: Duration,
}

fn accept_loop(listener: &TcpListener, config: &ServerConfig, shared: &Arc<Shared>) {
    let engine = Arc::new(config.engine.clone());
    if let Ok(addr) = listener.local_addr() {
        trace_event!(
            Level::Info,
            TRACE,
            "server started",
            addr = addr,
            shards = config.shards,
            max_conns = config.max_conns
        );
    }
    let shard_txs: Vec<mpsc::Sender<ShardMsg>> = (0..config.shards)
        .map(|i| {
            let (tx, rx) = mpsc::channel();
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(shared);
            let metrics = ShardMetrics::new(i);
            std::thread::Builder::new()
                .name(format!("serve-shard-{i}"))
                .spawn(move || shard_loop(&rx, i, &engine, &shared, &metrics))
                // lint:allow(no-panic-path): spawn failure at server startup is fatal
                // by design — a server missing a shard must not limp along silently.
                .unwrap_or_else(|e| panic!("spawning shard thread {i}: {e}"));
            tx
        })
        .collect();

    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the shutdown poke lands here
        }
        let Ok(stream) = stream else { continue };
        if shared.active.load(Ordering::SeqCst) >= config.max_conns as u64 {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.metrics.rejected_total.inc();
            trace_event!(
                Level::Warn,
                TRACE,
                "connection refused at accept gate",
                max_conns = config.max_conns
            );
            refuse_busy(stream, config.write_timeout);
            continue;
        }
        let conn_id = shared.accepted.fetch_add(1, Ordering::SeqCst) + 1;
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.connections_total.inc();
        shared.metrics.connections_active.inc();
        trace_event!(Level::Debug, TRACE, "connection accepted", conn = conn_id);
        let ctx = ConnCtx {
            shared: Arc::clone(shared),
            shard_txs: shard_txs.clone(),
            engine: Arc::clone(&engine),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
        };
        let exit_after = config.exit_after_conns;
        let local_addr = listener.local_addr().ok();
        let spawned = std::thread::Builder::new()
            .name(format!("serve-conn-{conn_id}"))
            .spawn(move || {
                connection_thread(stream, conn_id, &ctx);
                finish_connection(&ctx, exit_after, local_addr);
            });
        match spawned {
            Ok(handle) => conn_threads.push(handle),
            Err(_) => {
                // Out of threads: the connection (and the ctx moved into
                // the dropped closure) is gone; undo the admission.
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.metrics.connections_active.dec();
                trace_event!(
                    Level::Warn,
                    TRACE,
                    "spawning a connection thread failed",
                    conn = conn_id
                );
            }
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
    drop(shard_txs); // disconnects every shard channel
}

/// Post-connection bookkeeping: drop the active count and, when an
/// `exit_after_conns` quota is both reached and fully drained, initiate
/// shutdown.
fn finish_connection(ctx: &ConnCtx, exit_after: Option<u64>, local_addr: Option<SocketAddr>) {
    let remaining = ctx.shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
    ctx.shared.metrics.connections_active.dec();
    let Some(quota) = exit_after else { return };
    if remaining == 0 && ctx.shared.accepted.load(Ordering::SeqCst) >= quota {
        trace_event!(
            Level::Info,
            TRACE,
            "connection quota drained; shutting down",
            quota = quota
        );
        ctx.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = local_addr {
            drop(TcpStream::connect(addr)); // poke the acceptor awake
        }
    }
}

/// Refuses a connection at the accept gate with a synchronous
/// `Error{Busy}`.
fn refuse_busy(stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let mut w = BufWriter::new(stream);
    let _ = wire::write_frame(
        &mut w,
        &Frame::Error {
            code: ErrorCode::Busy,
            message: "connection limit reached; retry later".to_owned(),
        },
    );
    let _ = w.flush();
}

/// Most messages a shard takes off its channel in one swing; bounds the
/// reuse buffers while still amortizing wakeups under load.
const MAX_SHARD_BATCH: usize = 1024;

/// One shard owner: exclusively holds the predictor state of the
/// sessions hashed onto it and answers their samples in arrival order.
///
/// The loop drains in batches: one blocking receive, then everything
/// already queued (up to [`MAX_SHARD_BATCH`]). Runs of consecutive
/// samples for the same connection are coalesced and pushed through
/// [`SessionState::apply_batch`] — the engine's `step_many` — so a busy
/// session's backlog costs one map lookup per run, not one per sample.
/// Message order is preserved throughout, so decisions still come back
/// in sample order per session.
fn shard_loop(
    rx: &mpsc::Receiver<ShardMsg>,
    index: usize,
    engine: &EngineConfig,
    shared: &Shared,
    metrics: &ShardMetrics,
) {
    let mut sessions: HashMap<u64, (SessionState, mpsc::Sender<Frame>)> = HashMap::new();
    let mut batch: Vec<ShardMsg> = Vec::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut decisions: Vec<Decision> = Vec::new();
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < MAX_SHARD_BATCH {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        let mut queue = batch.drain(..).peekable();
        while let Some(msg) = queue.next() {
            match msg {
                ShardMsg::Register {
                    conn,
                    predictor,
                    version,
                    reply,
                } => match SessionState::new(engine, &predictor) {
                    Ok(session) => {
                        let ack = Frame::HelloAck {
                            version,
                            shard: u32::try_from(index).unwrap_or(u32::MAX),
                            op_points: engine.op_points(),
                        };
                        if reply.send(ack).is_ok() {
                            sessions.insert(conn, (session, reply));
                            metrics.sessions.inc();
                        }
                    }
                    Err(e) => {
                        let _ = reply.send(Frame::Error {
                            code: ErrorCode::BadConfig,
                            message: e.to_string(),
                        });
                    }
                },
                ShardMsg::Sample {
                    conn,
                    pid,
                    uops,
                    mem_trans,
                } => {
                    samples.clear();
                    samples.push(Sample {
                        pid,
                        uops,
                        mem_transactions: mem_trans,
                    });
                    // Coalesce the run of queued samples for this same
                    // connection; stop at any other message so per-conn
                    // ordering against register/unregister is untouched.
                    while let Some(ShardMsg::Sample { conn: next, .. }) = queue.peek() {
                        if *next != conn {
                            break;
                        }
                        let Some(ShardMsg::Sample {
                            pid,
                            uops,
                            mem_trans,
                            ..
                        }) = queue.next()
                        else {
                            break;
                        };
                        samples.push(Sample {
                            pid,
                            uops,
                            mem_transactions: mem_trans,
                        });
                    }
                    serve_sample_run(
                        &mut sessions,
                        conn,
                        &samples,
                        &mut decisions,
                        shared,
                        metrics,
                    );
                }
                ShardMsg::Unregister { conn } => {
                    retire_session(&mut sessions, conn, shared, metrics);
                }
            }
        }
    }
}

/// Decides one coalesced run of samples for `conn` and queues the
/// decision frames, in order, on the connection's writer.
fn serve_sample_run(
    sessions: &mut HashMap<u64, (SessionState, mpsc::Sender<Frame>)>,
    conn: u64,
    samples: &[Sample],
    decisions: &mut Vec<Decision>,
    shared: &Shared,
    metrics: &ShardMetrics,
) {
    for _ in 0..samples.len() {
        metrics.queue_depth.dec();
    }
    let mut writer_gone = false;
    if let Some((session, reply)) = sessions.get_mut(&conn) {
        let n = samples.len() as u64;
        let before = session.processes();
        let started = Instant::now(); // lint:allow(determinism): decision-latency histogram only
        decisions.clear();
        session.apply_batch(samples, decisions);
        // One histogram entry per decision at the batch-amortized cost,
        // so the count still equals the decision count.
        let per_decision_us =
            u64::try_from(started.elapsed().as_micros() / u128::from(n.max(1))).unwrap_or(u64::MAX);
        metrics.decision_us.record_n(per_decision_us, n);
        metrics.samples_total.add(n);
        shared.samples.fetch_add(n, Ordering::Relaxed);
        let grown = (session.processes() - before) as u64;
        if grown > 0 {
            shared.processes.fetch_add(grown, Ordering::Relaxed);
        }
        let mut sent = 0u64;
        for d in decisions.iter() {
            let frame = Frame::Decision {
                pid: d.pid,
                op_point: d.op_point,
                confidence: d.confidence,
            };
            if reply.send(frame).is_ok() {
                sent += 1;
            } else {
                // Writer is gone — the connection died mid-flight; the
                // rest of this run has no one to go to.
                writer_gone = true;
                break;
            }
        }
        shared.decisions.fetch_add(sent, Ordering::Relaxed);
    }
    // Samples for an unknown conn (failed registration) are dropped; the
    // client already holds a terminal Error frame.
    if writer_gone {
        retire_session(sessions, conn, shared, metrics);
    }
}

fn retire_session(
    sessions: &mut HashMap<u64, (SessionState, mpsc::Sender<Frame>)>,
    conn: u64,
    shared: &Shared,
    metrics: &ShardMetrics,
) {
    if let Some((session, _)) = sessions.remove(&conn) {
        shared
            .processes
            .fetch_sub(session.processes() as u64, Ordering::Relaxed);
        metrics.sessions.dec();
    }
}

/// Why a connection's read loop ended; decides poisoning and the terminal
/// frame.
enum ConnEnd {
    /// Client said `Goodbye` or closed the socket.
    Clean,
    /// The client broke protocol (malformed frame, out-of-order frame,
    /// idle timeout); a terminal `Error` was queued.
    Poisoned,
    /// The server is draining.
    ShuttingDown,
}

fn connection_thread(stream: TcpStream, conn_id: u64, ctx: &ConnCtx) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(ctx.read_timeout)).is_err()
        || stream.set_write_timeout(Some(ctx.write_timeout)).is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Frame>();
    let encode_us = Arc::clone(&ctx.shared.metrics.frame_encode_us);
    let Ok(writer) = std::thread::Builder::new()
        .name(format!("serve-conn-{conn_id}-writer"))
        .spawn(move || writer_loop(write_half, &reply_rx, &encode_us))
    else {
        // Out of threads: nothing can answer this connection.
        return;
    };

    let mut reader = BufReader::new(stream);
    let shard = serve_connection(&mut reader, conn_id, ctx, &reply_tx);
    trace_event!(Level::Debug, TRACE, "connection closed", conn = conn_id);

    // Drop the session (FIFO per sender: the shard answers every sample
    // already queued before it sees the unregister), then release our
    // reply sender so the writer drains and exits once the shard's clone
    // is gone too.
    if let Some(shard) = shard {
        // lint:allow(no-panic-path): shard_for returns an index modulo shard_txs.len()
        let _ = ctx.shard_txs[shard].send(ShardMsg::Unregister { conn: conn_id });
    }
    drop(reply_tx);
    let _ = writer.join();
}

/// Runs the handshake and the sample loop; returns the shard this
/// connection registered on, if it got that far.
fn serve_connection(
    reader: &mut BufReader<TcpStream>,
    conn_id: u64,
    ctx: &ConnCtx,
    reply: &mpsc::Sender<Frame>,
) -> Option<usize> {
    let (shard, version) = match handshake(reader, conn_id, ctx, reply) {
        Ok(outcome) => outcome,
        Err(end) => {
            if matches!(end, ConnEnd::Poisoned) {
                poison(ctx, conn_id);
            }
            return None;
        }
    };
    let end = sample_loop(reader, conn_id, ctx, reply, shard, version);
    if matches!(end, ConnEnd::Poisoned) {
        poison(ctx, conn_id);
    }
    Some(shard)
}

fn poison(ctx: &ConnCtx, conn_id: u64) {
    ctx.shared.poisoned.fetch_add(1, Ordering::Relaxed);
    ctx.shared.metrics.poisoned_total.inc();
    trace_event!(Level::Warn, TRACE, "connection poisoned", conn = conn_id);
}

/// Reads and answers the `Hello`; returns the shard index and the
/// negotiated protocol version on success.
fn handshake(
    reader: &mut BufReader<TcpStream>,
    conn_id: u64,
    ctx: &ConnCtx,
    reply: &mpsc::Sender<Frame>,
) -> Result<(usize, u16), ConnEnd> {
    let (frame, _) = read_or_end(reader, ctx, reply)?;
    let (version, client_id, platform, predictor) = match frame {
        Frame::Hello {
            version,
            client_id,
            platform,
            predictor,
        } => (version, client_id, platform, predictor),
        Frame::Goodbye => return Err(ConnEnd::Clean),
        other => {
            refuse(
                reply,
                ErrorCode::Protocol,
                format!("expected Hello, got {}", frame_name(&other)),
            );
            return Err(ConnEnd::Poisoned);
        }
    };
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        refuse(
            reply,
            ErrorCode::VersionMismatch,
            format!(
                "server speaks protocol v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}, \
                 client sent v{version}"
            ),
        );
        return Err(ConnEnd::Poisoned);
    }
    if platform != ctx.engine.platform() {
        refuse(
            reply,
            ErrorCode::BadConfig,
            format!(
                "server is configured for platform {:?}",
                ctx.engine.platform()
            ),
        );
        return Err(ConnEnd::Poisoned);
    }
    let shard = shard_for(client_id, ctx.shard_txs.len());
    // The shard answers HelloAck (or Error{BadConfig} for a predictor
    // spec that does not parse) on the reply channel.
    let register = ShardMsg::Register {
        conn: conn_id,
        predictor,
        version,
        reply: reply.clone(),
    };
    // lint:allow(no-panic-path): shard_for returns an index modulo shard_txs.len()
    if ctx.shard_txs[shard].send(register).is_err() {
        return Err(ConnEnd::ShuttingDown);
    }
    trace_event!(
        Level::Debug,
        TRACE,
        "session registered",
        conn = conn_id,
        shard = shard,
        version = version
    );
    Ok((shard, version))
}

/// The post-handshake read loop.
fn sample_loop(
    reader: &mut BufReader<TcpStream>,
    conn_id: u64,
    ctx: &ConnCtx,
    reply: &mpsc::Sender<Frame>,
    shard: usize,
    version: u16,
) -> ConnEnd {
    // Handles cached once per connection; records are then lock-free.
    let reg = livephase_telemetry::global();
    let shard_label = shard.to_string();
    let labels: &[(&str, &str)] = &[("shard", &shard_label)];
    let decode_us = reg.histogram(
        "serve_frame_decode_us",
        "Frame decode latency in microseconds (reader threads).",
        labels,
    );
    let queue_depth = reg.gauge(
        "serve_shard_queue_depth",
        "Messages queued to the shard and not yet processed.",
        labels,
    );
    loop {
        let frame = match read_or_end(reader, ctx, reply) {
            Ok((frame, decode_time)) => {
                decode_us.record(u64::try_from(decode_time.as_micros()).unwrap_or(u64::MAX));
                frame
            }
            Err(end) => return end,
        };
        match frame {
            Frame::Sample {
                pid,
                uops,
                mem_trans,
                tsc_delta: _,
            } => {
                let msg = ShardMsg::Sample {
                    conn: conn_id,
                    pid,
                    uops,
                    mem_trans,
                };
                queue_depth.inc();
                // lint:allow(no-panic-path): shard_for returns an index modulo shard_txs.len()
                if ctx.shard_txs[shard].send(msg).is_err() {
                    queue_depth.dec(); // the shard never saw it
                    return ConnEnd::ShuttingDown;
                }
            }
            Frame::StatsRequest => {
                // Answered from the shared counters without a shard round
                // trip; may overtake decisions still queued on the shard.
                let shards = u32::try_from(ctx.shard_txs.len()).unwrap_or(u32::MAX);
                let _ = reply.send(Frame::Stats(ctx.shared.snapshot(shards)));
            }
            Frame::MetricsRequest => {
                // v2+ only: a v1 session asking for metrics is breaking
                // the protocol it negotiated.
                if version < 2 {
                    refuse(
                        reply,
                        ErrorCode::Protocol,
                        format!("MetricsRequest needs protocol v2, session negotiated v{version}"),
                    );
                    return ConnEnd::Poisoned;
                }
                let text = wire::truncate_metrics_text(&reg.render()).to_owned();
                let _ = reply.send(Frame::Metrics { text });
            }
            Frame::Goodbye => return ConnEnd::Clean,
            other => {
                refuse(
                    reply,
                    ErrorCode::Protocol,
                    format!("client may not send {}", frame_name(&other)),
                );
                return ConnEnd::Poisoned;
            }
        }
    }
}

/// Reads one frame, translating transport/decode failures and the
/// shutdown flag into a [`ConnEnd`] (queueing the terminal error frame
/// where one is owed). Success carries the decode-only latency for the
/// caller's per-shard histogram.
fn read_or_end(
    reader: &mut BufReader<TcpStream>,
    ctx: &ConnCtx,
    reply: &mpsc::Sender<Frame>,
) -> Result<(Frame, Duration), ConnEnd> {
    if ctx.shared.shutdown.load(Ordering::SeqCst) {
        refuse(
            reply,
            ErrorCode::ShuttingDown,
            "server is draining".to_owned(),
        );
        return Err(ConnEnd::ShuttingDown);
    }
    match wire::read_frame_timed(reader) {
        Ok(timed) => Ok(timed),
        Err(e) if e.is_timeout() => {
            if ctx.shared.shutdown.load(Ordering::SeqCst) {
                refuse(
                    reply,
                    ErrorCode::ShuttingDown,
                    "server is draining".to_owned(),
                );
                Err(ConnEnd::ShuttingDown)
            } else {
                refuse(
                    reply,
                    ErrorCode::IdleTimeout,
                    format!("no frame within {:?}", ctx.read_timeout),
                );
                Err(ConnEnd::Poisoned)
            }
        }
        Err(FrameError::Decode(e)) => {
            refuse(reply, ErrorCode::Malformed, e.to_string());
            Err(ConnEnd::Poisoned)
        }
        // EOF or a dead socket: nothing left to tell the peer.
        Err(FrameError::Io(_)) => Err(ConnEnd::Clean),
    }
}

fn refuse(reply: &mpsc::Sender<Frame>, code: ErrorCode, message: impl Into<String>) {
    // Cold path — refusals are terminal — so the registry lookup per
    // call is fine.
    livephase_telemetry::global()
        .counter(
            "serve_errors_total",
            "Terminal Error frames sent, by error code.",
            &[("code", code.label())],
        )
        .inc();
    let _ = reply.send(Frame::Error {
        code,
        message: message.into(),
    });
}

pub(crate) fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "Hello",
        Frame::HelloAck { .. } => "HelloAck",
        Frame::Sample { .. } => "Sample",
        Frame::Decision { .. } => "Decision",
        Frame::StatsRequest => "StatsRequest",
        Frame::Stats(_) => "Stats",
        Frame::Error { .. } => "Error",
        Frame::Goodbye => "Goodbye",
        Frame::MetricsRequest => "MetricsRequest",
        Frame::Metrics { .. } => "Metrics",
    }
}

/// Encodes into the reused scratch buffer (no per-frame allocation),
/// timing encode (not socket I/O) for the writer-side latency histogram.
fn write_timed(
    w: &mut impl Write,
    frame: &Frame,
    encode_us: &Histogram,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    let started = Instant::now(); // lint:allow(determinism): encode-latency histogram only
    scratch.clear();
    wire::encode_into(frame, scratch);
    encode_us.record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
    w.write_all(scratch)
}

/// Drains queued frames into a `BufWriter`, flushing once per batch: one
/// blocking receive, then everything else already queued, then a flush.
fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<Frame>, encode_us: &Histogram) {
    let mut w = BufWriter::with_capacity(32 * 1024, stream);
    let mut scratch: Vec<u8> = Vec::with_capacity(64);
    while let Ok(frame) = rx.recv() {
        if write_timed(&mut w, &frame, encode_us, &mut scratch).is_err() {
            return;
        }
        while let Ok(f) = rx.try_recv() {
            if write_timed(&mut w, &f, encode_us, &mut scratch).is_err() {
                return;
            }
        }
        if w.flush().is_err() {
            return;
        }
    }
    let _ = w.flush();
}
