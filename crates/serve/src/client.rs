//! Clients for the `livephase-serve` protocol.
//!
//! [`Client`] is the blocking session: [`Client::connect`] runs the
//! version handshake; after that the caller pipelines
//! [`Client::queue_sample`] + [`Client::flush`] against
//! [`Client::read_decision`]. Writes are buffered — nothing reaches the
//! socket until `flush` — so a window of samples costs one syscall, the
//! same batching discipline the server uses for decisions.
//!
//! [`ConnDriver`] is the nonblocking counterpart for many-connection
//! load generation: one driver per socket, advanced by readiness events
//! from a caller-owned epoll loop (see `loadgen`'s reactor mode), with
//! the same resumable [`FrameDecoder`](wire::FrameDecoder) the server
//! uses — so one thread can multiplex tens of thousands of sessions.

use crate::wire::{
    self, ErrorCode, Frame, FrameDecoder, FrameError, StatsSnapshot, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Frame(FrameError),
    /// The server answered with a terminal [`Frame::Error`].
    Refused {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server sent a well-formed frame the protocol does not allow
    /// here.
    Unexpected {
        /// What the caller was waiting for.
        wanted: &'static str,
        /// What arrived instead.
        got: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::Frame(e) => write!(f, "frame: {e}"),
            Self::Refused { code, message } => write!(f, "server refused ({code}): {message}"),
            Self::Unexpected { wanted, got } => write!(f, "expected {wanted}, server sent {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// One decision read back from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedDecision {
    /// Process the decision is for.
    pub pid: u32,
    /// Operating-point index to apply (0 = fastest).
    pub op_point: u8,
    /// Running prediction accuracy in basis points.
    pub confidence: u16,
}

/// A connected, handshaken session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    shard: u32,
    op_points: u8,
    version: u16,
}

impl Client {
    /// Connects, sets socket timeouts, and performs the `Hello` /
    /// `HelloAck` handshake.
    ///
    /// # Errors
    ///
    /// Transport errors; [`ClientError::Refused`] when the server
    /// answers `Error` (version mismatch, bad predictor spec, busy).
    pub fn connect(
        addr: impl ToSocketAddrs,
        client_id: u64,
        platform: &str,
        predictor: &str,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::with_capacity(32 * 1024, stream);
        let mut client = Self {
            reader,
            writer,
            shard: 0,
            op_points: 0,
            version: PROTOCOL_VERSION,
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id,
            platform: platform.to_owned(),
            predictor: predictor.to_owned(),
        })?;
        client.flush()?;
        match client.read()? {
            Frame::HelloAck {
                version,
                shard,
                op_points,
            } => {
                client.version = version;
                client.shard = shard;
                client.op_points = op_points;
                Ok(client)
            }
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Shard index the session landed on.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of operating points decisions index into.
    #[must_use]
    pub fn op_points(&self) -> u8 {
        self.op_points
    }

    /// Protocol version the session negotiated (echoed in `HelloAck`).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Queues one counter sample (buffered; call [`flush`](Self::flush)).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn queue_sample(
        &mut self,
        pid: u32,
        uops: u64,
        mem_trans: u64,
        tsc_delta: u64,
    ) -> Result<(), ClientError> {
        self.send(&Frame::Sample {
            pid,
            uops,
            mem_trans,
            tsc_delta,
        })
    }

    /// Pushes everything queued onto the socket.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next decision.
    ///
    /// # Errors
    ///
    /// Transport/decode errors; [`ClientError::Refused`] when the server
    /// terminates the session instead.
    pub fn read_decision(&mut self) -> Result<ServedDecision, ClientError> {
        match self.read()? {
            Frame::Decision {
                pid,
                op_point,
                confidence,
            } => Ok(ServedDecision {
                pid,
                op_point,
                confidence,
            }),
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("Decision", &other)),
        }
    }

    /// Requests and reads a stats snapshot. Drain pending decisions
    /// first: the protocol answers in order per stream, but a snapshot
    /// may overtake decisions still being computed.
    ///
    /// # Errors
    ///
    /// Transport/decode errors; [`ClientError::Unexpected`] if a
    /// decision was still in flight.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Frame::StatsRequest)?;
        self.flush()?;
        match self.read()? {
            Frame::Stats(snapshot) => Ok(snapshot),
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Requests and reads a metrics exposition scrape (protocol v2).
    /// As with [`stats`](Self::stats), drain pending decisions first.
    ///
    /// # Errors
    ///
    /// Transport/decode errors; [`ClientError::Refused`] when the
    /// server rejects the request (e.g. a v1 session).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::MetricsRequest)?;
        self.flush()?;
        match self.read()? {
            Frame::Metrics { text } => Ok(text),
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Sends `Goodbye` and closes the session.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&Frame::Goodbye)?;
        self.flush()?;
        Ok(())
    }

    /// Reads one raw frame (for callers exercising the protocol edges).
    ///
    /// # Errors
    ///
    /// Transport/decode errors.
    pub fn read(&mut self) -> Result<Frame, ClientError> {
        Ok(wire::read_frame(&mut self.reader)?)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        wire::write_frame(&mut self.writer, frame)?;
        Ok(())
    }
}

/// A nonblocking protocol driver: one socket, a resumable decoder, and
/// an outbound byte queue, advanced by readiness events from a
/// caller-owned epoll loop.
///
/// The driver is transport-only: the caller queues frames with
/// [`queue`](Self::queue), pumps bytes with [`fill`](Self::fill) /
/// [`flush`](Self::flush) when its event loop reports readiness, and
/// drains decoded frames with [`next_frame`](Self::next_frame). Session
/// logic (handshake tracking, windowed replay, oracle comparison) stays
/// with the caller, which is what lets one thread drive tens of
/// thousands of these.
#[derive(Debug)]
pub struct ConnDriver {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbound: Vec<u8>,
    sent: usize,
    peer_gone: bool,
}

impl ConnDriver {
    /// Connects (blocking, so callers can pace connect waves), switches
    /// the socket nonblocking, and queues the `Hello` — the handshake
    /// completes when the caller's event loop reads the `HelloAck`.
    ///
    /// # Errors
    ///
    /// Propagates connect/setup failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        client_id: u64,
        platform: &str,
        predictor: &str,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut driver = Self {
            stream,
            decoder: FrameDecoder::new(),
            outbound: Vec::new(),
            sent: 0,
            peer_gone: false,
        };
        driver.queue(&Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id,
            platform: platform.to_owned(),
            predictor: predictor.to_owned(),
        });
        driver.flush();
        Ok(driver)
    }

    /// The socket's raw fd, for epoll registration.
    #[must_use]
    pub fn as_raw_fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Appends one frame to the outbound queue (call
    /// [`flush`](Self::flush) to push bytes).
    pub fn queue(&mut self, frame: &Frame) {
        wire::encode_into(frame, &mut self.outbound);
    }

    /// Bytes queued outbound and not yet written.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.outbound.len().saturating_sub(self.sent)
    }

    /// Whether the peer closed or the socket failed.
    #[must_use]
    pub fn peer_gone(&self) -> bool {
        self.peer_gone
    }

    /// Writes queued bytes until the socket pushes back.
    pub fn flush(&mut self) {
        while self.sent < self.outbound.len() {
            let Some(chunk) = self.outbound.get(self.sent..) else {
                unreachable!("sent is bounded by outbound.len() by the loop condition")
            };
            match self.stream.write(chunk) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
        if self.sent == self.outbound.len() {
            self.outbound.clear();
            self.sent = 0;
        }
    }

    /// Reads whatever the socket has into the decoder; drain the decoded
    /// frames with [`next_frame`](Self::next_frame).
    pub fn fill(&mut self, scratch: &mut [u8]) {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => {
                    let Some(chunk) = scratch.get(..n) else {
                        unreachable!("read(2) never returns more than the buffer length")
                    };
                    self.decoder.feed(chunk);
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
    }

    /// Yields the next complete frame banked by [`fill`](Self::fill), or
    /// `Ok(None)` when the banked bytes end mid-frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Frame`] when the server's bytes do not decode.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ClientError> {
        self.decoder
            .next_frame()
            .map_err(|e| ClientError::Frame(FrameError::Decode(e)))
    }
}

fn unexpected(wanted: &'static str, got: &Frame) -> ClientError {
    let got = match got {
        Frame::Hello { .. } => "Hello",
        Frame::HelloAck { .. } => "HelloAck",
        Frame::Sample { .. } => "Sample",
        Frame::Decision { .. } => "Decision",
        Frame::StatsRequest => "StatsRequest",
        Frame::Stats(_) => "Stats",
        Frame::Error { .. } => "Error",
        Frame::Goodbye => "Goodbye",
        Frame::MetricsRequest => "MetricsRequest",
        Frame::Metrics { .. } => "Metrics",
    };
    ClientError::Unexpected { wanted, got }
}
