//! A blocking client for the `livephase-serve` protocol.
//!
//! [`Client::connect`] runs the version handshake; after that the caller
//! pipelines [`Client::queue_sample`] + [`Client::flush`] against
//! [`Client::read_decision`]. Writes are buffered — nothing reaches the
//! socket until `flush` — so a window of samples costs one syscall, the
//! same batching discipline the server uses for decisions.

use crate::wire::{self, ErrorCode, Frame, FrameError, StatsSnapshot, PROTOCOL_VERSION};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Frame(FrameError),
    /// The server answered with a terminal [`Frame::Error`].
    Refused {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server sent a well-formed frame the protocol does not allow
    /// here.
    Unexpected {
        /// What the caller was waiting for.
        wanted: &'static str,
        /// What arrived instead.
        got: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::Frame(e) => write!(f, "frame: {e}"),
            Self::Refused { code, message } => write!(f, "server refused ({code}): {message}"),
            Self::Unexpected { wanted, got } => write!(f, "expected {wanted}, server sent {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// One decision read back from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedDecision {
    /// Process the decision is for.
    pub pid: u32,
    /// Operating-point index to apply (0 = fastest).
    pub op_point: u8,
    /// Running prediction accuracy in basis points.
    pub confidence: u16,
}

/// A connected, handshaken session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    shard: u32,
    op_points: u8,
    version: u16,
}

impl Client {
    /// Connects, sets socket timeouts, and performs the `Hello` /
    /// `HelloAck` handshake.
    ///
    /// # Errors
    ///
    /// Transport errors; [`ClientError::Refused`] when the server
    /// answers `Error` (version mismatch, bad predictor spec, busy).
    pub fn connect(
        addr: impl ToSocketAddrs,
        client_id: u64,
        platform: &str,
        predictor: &str,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::with_capacity(32 * 1024, stream);
        let mut client = Self {
            reader,
            writer,
            shard: 0,
            op_points: 0,
            version: PROTOCOL_VERSION,
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id,
            platform: platform.to_owned(),
            predictor: predictor.to_owned(),
        })?;
        client.flush()?;
        match client.read()? {
            Frame::HelloAck {
                version,
                shard,
                op_points,
            } => {
                client.version = version;
                client.shard = shard;
                client.op_points = op_points;
                Ok(client)
            }
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Shard index the session landed on.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of operating points decisions index into.
    #[must_use]
    pub fn op_points(&self) -> u8 {
        self.op_points
    }

    /// Protocol version the session negotiated (echoed in `HelloAck`).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Queues one counter sample (buffered; call [`flush`](Self::flush)).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn queue_sample(
        &mut self,
        pid: u32,
        uops: u64,
        mem_trans: u64,
        tsc_delta: u64,
    ) -> Result<(), ClientError> {
        self.send(&Frame::Sample {
            pid,
            uops,
            mem_trans,
            tsc_delta,
        })
    }

    /// Pushes everything queued onto the socket.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next decision.
    ///
    /// # Errors
    ///
    /// Transport/decode errors; [`ClientError::Refused`] when the server
    /// terminates the session instead.
    pub fn read_decision(&mut self) -> Result<ServedDecision, ClientError> {
        match self.read()? {
            Frame::Decision {
                pid,
                op_point,
                confidence,
            } => Ok(ServedDecision {
                pid,
                op_point,
                confidence,
            }),
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("Decision", &other)),
        }
    }

    /// Requests and reads a stats snapshot. Drain pending decisions
    /// first: the protocol answers in order per stream, but a snapshot
    /// may overtake decisions still being computed.
    ///
    /// # Errors
    ///
    /// Transport/decode errors; [`ClientError::Unexpected`] if a
    /// decision was still in flight.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Frame::StatsRequest)?;
        self.flush()?;
        match self.read()? {
            Frame::Stats(snapshot) => Ok(snapshot),
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Requests and reads a metrics exposition scrape (protocol v2).
    /// As with [`stats`](Self::stats), drain pending decisions first.
    ///
    /// # Errors
    ///
    /// Transport/decode errors; [`ClientError::Refused`] when the
    /// server rejects the request (e.g. a v1 session).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::MetricsRequest)?;
        self.flush()?;
        match self.read()? {
            Frame::Metrics { text } => Ok(text),
            Frame::Error { code, message } => Err(ClientError::Refused { code, message }),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Sends `Goodbye` and closes the session.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&Frame::Goodbye)?;
        self.flush()?;
        Ok(())
    }

    /// Reads one raw frame (for callers exercising the protocol edges).
    ///
    /// # Errors
    ///
    /// Transport/decode errors.
    pub fn read(&mut self) -> Result<Frame, ClientError> {
        Ok(wire::read_frame(&mut self.reader)?)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        wire::write_frame(&mut self.writer, frame)?;
        Ok(())
    }
}

fn unexpected(wanted: &'static str, got: &Frame) -> ClientError {
    let got = match got {
        Frame::Hello { .. } => "Hello",
        Frame::HelloAck { .. } => "HelloAck",
        Frame::Sample { .. } => "Sample",
        Frame::Decision { .. } => "Decision",
        Frame::StatsRequest => "StatsRequest",
        Frame::Stats(_) => "Stats",
        Frame::Error { .. } => "Error",
        Frame::Goodbye => "Goodbye",
        Frame::MetricsRequest => "MetricsRequest",
        Frame::Metrics { .. } => "Metrics",
    };
    ClientError::Unexpected { wanted, got }
}
