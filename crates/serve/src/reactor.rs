//! Raw, zero-dependency `epoll` bindings: the reactor's syscall floor.
//!
//! The serve reactor multiplexes tens of thousands of sockets per shard
//! thread, which needs readiness notification the standard library does
//! not expose. Rather than pull in an async runtime or an FFI crate,
//! this module declares the four syscalls it needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `fcntl`, plus `setsockopt` for buffer
//! sizing) against the libc the standard library already links, and
//! wraps them in a safe, minimal surface:
//!
//! - [`Epoll`] — an owned epoll instance; register/modify/remove
//!   interest per fd with a caller-chosen `u64` token, then
//!   [`wait`](Epoll::wait) for a batch of [`Event`]s. Registration is
//!   **level-triggered**: a readable socket keeps reporting readable
//!   until drained, so a shard loop that under-reads one tick is
//!   corrected the next — no edge-triggered starvation hazards.
//! - [`set_nonblocking`] — `fcntl(F_SETFL, O_NONBLOCK)` on a raw fd.
//! - [`set_send_buffer`] / [`set_recv_buffer`] — `SO_SNDBUF` /
//!   `SO_RCVBUF`, used to bound kernel-side buffering per connection at
//!   100k-connection scale (and by tests to make backpressure prompt).
//!
//! This file is the workspace's only sanctioned `unsafe` island:
//! livephase-lint's `safety-comment` rule refuses `unsafe` in any other
//! file, and every block here carries a `// SAFETY:` argument. The rest
//! of the serve crate stays `deny(unsafe_code)`.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

/// `epoll_event` as the kernel ABI lays it out. On x86-64 the kernel
/// declares the struct packed (no padding between the 32-bit event mask
/// and the 64-bit data word); elsewhere it uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: c_uint,
    ) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o200_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;

/// Which readiness a registration asks for. Level-triggered; peer
/// hangup ([`Event::hangup`]) is always watched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only — the steady state of a connection with nothing
    /// queued outbound.
    Read,
    /// Readable and writable — registered while the outbound buffer is
    /// non-empty, dropped back to [`Interest::Read`] once drained (a
    /// level-triggered `EPOLLOUT` on an idle socket would busy-spin).
    ReadWrite,
    /// Writable only — a shedding connection that must drain its typed
    /// error but whose inbound bytes we no longer want.
    Write,
}

impl Interest {
    fn mask(self) -> u32 {
        match self {
            Self::Read => EPOLLIN | EPOLLRDHUP,
            Self::ReadWrite => EPOLLIN | EPOLLOUT | EPOLLRDHUP,
            Self::Write => EPOLLOUT | EPOLLRDHUP,
        }
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes (or an accept) are waiting.
    pub readable: bool,
    /// The socket can take more outbound bytes.
    pub writable: bool,
    /// The peer hung up or the socket errored; readable data may still
    /// be pending (level-triggered reads drain it first).
    pub hangup: bool,
}

/// Reusable event batch buffer for [`Epoll::wait`] — allocated once per
/// shard, never per tick.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Events delivered by the most recent wait.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the most recent wait delivered nothing (pure tick).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the events of the most recent wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf.iter().take(self.len).map(|raw| {
            // Copy out of the (possibly packed) ABI struct by value;
            // taking references into it would be unaligned.
            let e = *raw;
            let bits = e.events;
            Event {
                token: e.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            }
        })
    }
}

/// An owned epoll instance. Closed on drop; registered fds are *not*
/// owned — callers keep their `TcpStream`s and deregister before close.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw OS error when the kernel refuses (e.g. fd limit).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; it either yields a
        // fresh descriptor or fails with a negative return.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the descriptor was just created by epoll_create1 and
        // is owned exclusively here; OwnedFd takes over closing it.
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: mask,
            data: token,
        };
        let epfd = raw(&self.fd);
        // SAFETY: `event` is a live, properly laid-out epoll_event for
        // the duration of the call; the kernel copies it and keeps no
        // pointer past return. `epfd` is owned by self and open.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest and token.
    ///
    /// # Errors
    ///
    /// The raw OS error (e.g. `EEXIST` for a double add).
    pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.mask(), token)
    }

    /// Changes an existing registration's interest (and token).
    ///
    /// # Errors
    ///
    /// The raw OS error (e.g. `ENOENT` when `fd` was never added).
    pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.mask(), token)
    }

    /// Removes `fd` from the interest set. (Closing an fd removes it
    /// implicitly, but explicit removal keeps bookkeeping honest.)
    ///
    /// # Errors
    ///
    /// The raw OS error.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // A non-null event pointer is still required by kernels older
        // than 2.6.9; passing a zeroed one is compatible with all.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`, for at most `timeout`
    /// (`None` blocks indefinitely). Returns the number of events;
    /// `EINTR` is treated as an empty wake, not an error.
    ///
    /// # Errors
    ///
    /// The raw OS error for anything other than `EINTR`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => c_int::try_from(d.as_millis()).unwrap_or(c_int::MAX),
        };
        let capacity =
            c_int::try_from(events.buf.len()).unwrap_or_else(|_| unreachable!("bounded capacity"));
        let epfd = raw(&self.fd);
        // SAFETY: `events.buf` is a live, exclusively borrowed slice of
        // `capacity` properly laid-out epoll_events; the kernel writes
        // at most `capacity` entries and keeps no pointer past return.
        let rc = unsafe { epoll_wait(epfd, events.buf.as_mut_ptr(), capacity, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = usize::try_from(rc).unwrap_or(0);
        Ok(events.len)
    }
}

fn raw(fd: &OwnedFd) -> c_int {
    use std::os::fd::AsRawFd;
    fd.as_raw_fd()
}

/// Sets or clears `O_NONBLOCK` on a raw descriptor via `fcntl`.
///
/// # Errors
///
/// The raw OS error from either `fcntl` call.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: F_GETFL passes no pointers and does not retain `fd`; the
    // caller guarantees `fd` is a live descriptor it owns.
    let flags = unsafe { fcntl(fd, F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let want = if nonblocking {
        flags | O_NONBLOCK
    } else {
        flags & !O_NONBLOCK
    };
    if want == flags {
        return Ok(());
    }
    // SAFETY: F_SETFL takes its int argument by value — no pointers,
    // no retention; `fd` is live per the caller.
    let rc = unsafe { fcntl(fd, F_SETFL, want) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

fn set_buffer(fd: RawFd, opt: c_int, bytes: usize) -> io::Result<()> {
    let value: c_int = c_int::try_from(bytes).unwrap_or(c_int::MAX);
    let size = c_uint::try_from(std::mem::size_of::<c_int>())
        .unwrap_or_else(|_| unreachable!("size_of::<c_int>() fits c_uint"));
    // SAFETY: `value` outlives the call and `optlen` states its exact
    // size; the kernel copies the int and keeps no pointer past return.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            std::ptr::addr_of!(value).cast::<c_void>(),
            size,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Caps the kernel send buffer (`SO_SNDBUF`) for a socket. At
/// 100k-connection scale default send buffers dominate memory; the
/// reactor's own bounded outbound queue then carries the backpressure.
///
/// # Errors
///
/// The raw OS error.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buffer(fd, SO_SNDBUF, bytes)
}

/// Caps the kernel receive buffer (`SO_RCVBUF`) for a socket. Used by
/// backpressure tests to make a non-draining peer overflow promptly.
///
/// # Errors
///
/// The raw OS error.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buffer(fd, SO_RCVBUF, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        let mut events = Events::with_capacity(8);

        // The idle listener is not readable within a short wait.
        epoll.add(listener.as_raw_fd(), Interest::Read, 1).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());

        // A connect makes it readable with our token.
        let client = TcpStream::connect(addr).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 1);
        assert!(ev.readable);

        // Accept; the server end is writable but not readable until the
        // client sends.
        let (server, _) = listener.accept().unwrap();
        epoll
            .add(server.as_raw_fd(), Interest::ReadWrite, 2)
            .unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == 2).unwrap();
        assert!(ev.writable && !ev.readable);

        // Bytes from the client flip it readable.
        (&client).write_all(b"ping").unwrap();
        epoll.modify(server.as_raw_fd(), Interest::Read, 2).unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == 2).unwrap();
        assert!(ev.readable);

        // Dropping the client raises hangup on the server end.
        drop(client);
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == 2).unwrap();
        assert!(ev.hangup);

        epoll.delete(server.as_raw_fd()).unwrap();
        epoll.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn nonblocking_read_returns_would_block() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        set_nonblocking(server.as_raw_fd(), true).unwrap();
        let mut buf = [0u8; 16];
        let err = (&server).read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        // Idempotent set, then clear.
        set_nonblocking(server.as_raw_fd(), true).unwrap();
        set_nonblocking(server.as_raw_fd(), false).unwrap();
        drop(client);
    }

    #[test]
    fn socket_buffers_can_be_capped() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(client.as_raw_fd(), 4096).unwrap();
        set_recv_buffer(client.as_raw_fd(), 4096).unwrap();
    }

    #[test]
    fn delete_of_unregistered_fd_errors() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let epoll = Epoll::new().unwrap();
        assert!(epoll.delete(listener.as_raw_fd()).is_err());
    }
}
