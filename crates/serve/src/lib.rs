//! Phase monitoring and prediction as a network service.
//!
//! The paper's deployment runs the phase predictor inside the kernel of
//! the machine it manages. This crate is the other deployment shape: a
//! long-running TCP daemon that accepts counter samples from many
//! machines (or many processes) and returns DVFS decisions — phase
//! prediction as infrastructure rather than a kernel module.
//!
//! The crate stacks four layers, std-only (no async runtime, no
//! networking dependencies):
//!
//! - [`wire`] — the versioned, length-prefixed binary frame protocol:
//!   `Hello`/`HelloAck` handshake, `Sample` → `Decision` streaming,
//!   `Stats`, explicit `Error` frames.
//! - [`engine`] — the shard-local session layer: per-client
//!   [`SessionState`](engine::SessionState), a thin adapter over the
//!   shared `livephase-engine` decision pipeline (bit-identical to the
//!   in-process manager's decision path) with batched queue draining.
//! - [`server`] — the sharded daemon: N shard owner threads exclusively
//!   holding predictor state, timeouts, a `max_conns` accept gate,
//!   poison-one-connection error handling and flag-based draining
//!   shutdown. Connections are driven by a nonblocking epoll **reactor**
//!   (the [`reactor`] syscall layer plus the private `conn` and `shard`
//!   modules) — one readiness loop per shard thread owning thousands of
//!   sockets, bounded outbound queues with slow-consumer shedding, idle
//!   reaping on a coarse tick.
//! - [`client`] / [`loadgen`] — the blocking client and the
//!   `serve-bench` load generator, which replays the synthetic SPEC
//!   workloads over M connections and checks served decisions bit-exactly
//!   against an in-process oracle run.

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the `reactor` syscall module, the workspace's sanctioned unsafe
// island (livephase-lint's safety-comment rule pins that scoping).
#![deny(unsafe_code)]
#![warn(missing_docs)]
// The decision path must not panic on malformed input: sessions are the
// failure domain, so serving code is held unwrap/expect-free outside tests.
// ci.sh runs clippy with -D warnings, turning any regression into an error.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub(crate) mod conn;
pub mod engine;
pub mod loadgen;
pub mod reactor;
pub mod server;
pub(crate) mod shard;
pub mod wire;

pub use client::{Client, ClientError, ServedDecision};
pub use engine::{shard_for, Decision, EngineConfig, EngineConfigError, Sample, SessionState};
pub use loadgen::{Agreement, LoadGenConfig, LoadGenError, LoadReport};
pub use server::{spawn, ServerConfig, ServerHandle, ServerSummary};
pub use wire::{ErrorCode, Frame, StatsSnapshot, MAX_FRAME_BYTES, PROTOCOL_VERSION};
