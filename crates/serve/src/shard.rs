//! The reactor's per-shard event loop: one thread, one epoll instance,
//! thousands of connections.
//!
//! Each shard-owner thread clones the listening socket (all clones share
//! one accept queue, so the kernel load-balances accepts across shards)
//! and runs a level-triggered readiness loop over every connection it
//! accepted: accepts are drained in bounded bursts, readable sockets
//! feed their [`Conn`]'s incremental decoder, decoded sample runs go
//! through `SessionState::apply_batch` (the engine's `step_many`)
//! exactly as the blocking shard loop does, and writable sockets drain
//! their bounded outbound queues. A coarse tick — a fraction of the
//! configured read timeout — drives idle reaping and bounds how late a
//! shard notices the shutdown flag.
//!
//! Unlike the blocking path, where a connection's *placement* hashes its
//! client id onto a shard, here the shard that wins the accept owns the
//! connection outright: predictor state never crosses a thread, so the
//! no-lock-around-any-GPHT property is preserved, and decisions are
//! bit-identical either way because every session is independent.

use crate::conn::{Conn, Cx};
use crate::engine::{Decision, EngineConfig, Sample};
use crate::server::{ServerConfig, ShardMetrics, Shared};
use livephase_pmsim::{OperatingPointTable, PowerModel};
use livephase_telemetry::{trace_event, Counter, Gauge, Histogram, Level};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
// lint:allow(determinism): Instant feeds the reaping tick and latency telemetry;
// the decision path itself is a pure function of the sample stream.
use std::time::{Duration, Instant};

use crate::reactor::{self, Epoll, Events, Interest};

/// Tracing target for shard-loop lifecycle events under the reactor.
const TRACE: &str = "serve::shard";

/// Token reserved for the shard's listener registration; connection
/// tokens are their raw fds, which the kernel keeps well below this.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Readiness events drained per `epoll_wait`.
const EVENTS_PER_WAIT: usize = 1024;

/// Accepts drained per listener readiness event, so one connect storm
/// cannot starve established connections.
const ACCEPTS_PER_EVENT: usize = 256;

/// Shared read scratch per shard: reads land here and are fed to the
/// owning connection's decoder, so serving allocates no per-read buffer.
const READ_SCRATCH_BYTES: usize = 64 * 1024;

/// Per-shard reactor instruments: the shard's session/decision handles
/// plus the reactor-specific gauges the tentpole adds.
pub(crate) struct ReactorMetrics {
    /// The same per-shard handles the blocking shard loop records.
    pub(crate) shard: ShardMetrics,
    /// Decode latency, shard-labeled like the blocking reader threads'.
    pub(crate) decode_us: Arc<Histogram>,
    /// Sockets (plus the listener) this shard currently owns.
    pub(crate) open_fds: Arc<Gauge>,
    /// Readiness events delivered by the most recent `epoll_wait`.
    pub(crate) ready_depth: Arc<Gauge>,
    /// Connections shed for overflowing their outbound queue.
    pub(crate) shed_total: Arc<Counter>,
    /// Connections reaped for idling past the read timeout.
    pub(crate) reaped_total: Arc<Counter>,
    /// Resumed decode attempts a frame needed before completing.
    pub(crate) decode_resumes: Arc<Histogram>,
}

impl ReactorMetrics {
    fn new(index: usize) -> Self {
        let reg = livephase_telemetry::global();
        let shard_label = index.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard_label)];
        Self {
            shard: ShardMetrics::new(index),
            decode_us: reg.histogram(
                "serve_frame_decode_us",
                "Frame decode latency in microseconds (reader threads).",
                labels,
            ),
            open_fds: reg.gauge(
                "serve_reactor_open_fds",
                "Sockets (including the listener) owned by this shard's reactor.",
                labels,
            ),
            ready_depth: reg.gauge(
                "serve_reactor_ready_queue_depth",
                "Readiness events delivered by the shard's most recent epoll wait.",
                labels,
            ),
            shed_total: reg.counter(
                "serve_conns_shed_total",
                "Connections shed for overflowing their bounded outbound queue.",
                labels,
            ),
            reaped_total: reg.counter(
                "serve_conns_reaped_total",
                "Connections reaped for idling past the read timeout.",
                labels,
            ),
            decode_resumes: reg.histogram(
                // lint:allow(telemetry-naming): counts decoder resumes per frame, not microseconds
                "serve_reactor_decode_resumes",
                "Resumed decode attempts a frame needed before its bytes completed.",
                labels,
            ),
        }
    }
}

/// Spawns one reactor thread per shard, each owning a clone of the
/// listener. Returns the join handles; the threads run until the shared
/// shutdown flag is raised and their connections drain.
///
/// # Errors
///
/// Propagates listener clone / nonblocking setup / thread spawn
/// failures; on a partial failure the shutdown flag is raised so the
/// already-spawned shards exit.
pub(crate) fn spawn_shards(
    listener: TcpListener,
    config: &ServerConfig,
    shared: &Arc<Shared>,
) -> io::Result<Vec<JoinHandle<()>>> {
    // Nonblocking applies to the shared open file description, so one
    // call covers every per-shard clone.
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    trace_event!(
        Level::Info,
        TRACE,
        "server started",
        addr = local_addr,
        shards = config.shards,
        max_conns = config.max_conns
    );
    let engine = Arc::new(config.engine.clone());
    // The last shard takes the original listener; earlier ones clone it
    // (clones share the accept queue, so the kernel spreads accepts).
    let mut listeners = Vec::with_capacity(config.shards);
    for _ in 0..config.shards.saturating_sub(1) {
        match listener.try_clone() {
            Ok(l) => listeners.push(l),
            Err(e) => return spawn_failed(e, shared),
        }
    }
    listeners.push(listener);
    let mut threads = Vec::with_capacity(config.shards);
    for (i, listener) in listeners.into_iter().enumerate() {
        let engine = Arc::clone(&engine);
        let shared_for_shard = Arc::clone(shared);
        let config = config.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("serve-shard-{i}"))
            .spawn(move || {
                shard_reactor_loop(i, &listener, &config, &engine, &shared_for_shard);
            });
        match spawned {
            Ok(handle) => threads.push(handle),
            Err(e) => return spawn_failed(e, shared),
        }
    }
    // The original listener moved into the last shard; drop nothing here.
    Ok(threads)
}

fn spawn_failed<T>(e: io::Error, shared: &Shared) -> io::Result<T> {
    // Already-running shards must not serve with missing siblings.
    shared.shutdown.store(true, Ordering::SeqCst);
    Err(e)
}

/// One shard's event loop: accept, decode, decide, flush, reap.
fn shard_reactor_loop(
    index: usize,
    listener: &TcpListener,
    config: &ServerConfig,
    engine: &EngineConfig,
    shared: &Shared,
) {
    let metrics = ReactorMetrics::new(index);
    let epoll = match Epoll::new() {
        Ok(ep) => ep,
        Err(e) => {
            trace_event!(
                Level::Warn,
                TRACE,
                "epoll setup failed",
                shard = index,
                error = e
            );
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
    };
    if let Err(e) = epoll.add(listener.as_raw_fd(), Interest::Read, LISTENER_TOKEN) {
        trace_event!(
            Level::Warn,
            TRACE,
            "listener registration failed",
            shard = index,
            error = e
        );
        shared.shutdown.store(true, Ordering::SeqCst);
        return;
    }
    let local_addr = listener.local_addr().ok();
    // Reaping compares against the read timeout, so a quarter of it keeps
    // worst-case lateness small without spinning; clamped so tiny test
    // timeouts still tick and huge ones still notice shutdown promptly.
    let tick =
        (config.read_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
    let mut events = Events::with_capacity(EVENTS_PER_WAIT);
    let mut conns: BTreeMap<RawFd, Conn> = BTreeMap::new();
    let mut scratch = vec![0u8; READ_SCRATCH_BYTES];
    // Worst-case milliwatts per operating point, priced once here by the
    // configured power backend so `flush_run` only indexes by op_point.
    // Rounded rather than truncated so the analytic default's table
    // survives a backend swap to any model agreeing within half a mW.
    let power_mw: Vec<i64> = OperatingPointTable::pentium_m()
        .points()
        .iter()
        .map(|opp| (config.power.worst_case(*opp) * 1000.0).round() as i64)
        .collect();
    let mut samples: Vec<Sample> = Vec::new();
    let mut decisions: Vec<Decision> = Vec::new();
    let mut to_close: Vec<RawFd> = Vec::new();
    let mut listener_live = true;
    let mut last_reap = Instant::now(); // lint:allow(determinism): reaping cadence only
    loop {
        if epoll.wait(&mut events, Some(tick)).is_err() {
            trace_event!(Level::Warn, TRACE, "epoll wait failed", shard = index);
            break;
        }
        let now = Instant::now(); // lint:allow(determinism): one clock read per wake
        metrics
            .ready_depth
            .set(i64::try_from(events.len()).unwrap_or(i64::MAX));
        if listener_live && shared.shutdown.load(Ordering::SeqCst) {
            listener_live = false;
            let _ = epoll.delete(listener.as_raw_fd());
            for (fd, conn) in conns.iter_mut() {
                let mut cx = Cx {
                    engine,
                    shared,
                    metrics: &metrics,
                    shard_index: index,
                    shards_total: config.shards,
                    max_outbound: config.max_outbound_bytes,
                    samples: &mut samples,
                    decisions: &mut decisions,
                    power_mw: &power_mw,
                    now,
                };
                conn.begin_drain(&mut cx);
                sync_conn(&epoll, *fd, conn, &mut to_close);
            }
        }
        for ev in events.iter() {
            if ev.token == LISTENER_TOKEN {
                if listener_live {
                    accept_burst(listener, &epoll, config, shared, &mut conns, now);
                }
                continue;
            }
            // Tokens are raw fds; both fit i32 on every Linux target.
            let fd = ev.token as RawFd;
            let Some(conn) = conns.get_mut(&fd) else {
                continue; // already closed this wake
            };
            let mut cx = Cx {
                engine,
                shared,
                metrics: &metrics,
                shard_index: index,
                shards_total: config.shards,
                max_outbound: config.max_outbound_bytes,
                samples: &mut samples,
                decisions: &mut decisions,
                power_mw: &power_mw,
                now,
            };
            if ev.readable || ev.hangup {
                conn.on_readable(&mut scratch, &mut cx);
            }
            if ev.writable {
                conn.on_writable(now);
            }
            if ev.hangup && conn.pending() == 0 && conn.desired().is_some() {
                // Peer half is gone and nothing is owed: don't wait for a
                // read to observe the EOF.
                to_close.push(fd);
            } else {
                sync_conn(&epoll, fd, conn, &mut to_close);
            }
        }
        if now.duration_since(last_reap) >= tick {
            last_reap = now;
            for (fd, conn) in conns.iter_mut() {
                let mut cx = Cx {
                    engine,
                    shared,
                    metrics: &metrics,
                    shard_index: index,
                    shards_total: config.shards,
                    max_outbound: config.max_outbound_bytes,
                    samples: &mut samples,
                    decisions: &mut decisions,
                    power_mw: &power_mw,
                    now,
                };
                conn.reap(&mut cx, config.read_timeout, config.write_timeout);
                sync_conn(&epoll, *fd, conn, &mut to_close);
            }
        }
        for fd in to_close.drain(..) {
            let Some(mut conn) = conns.remove(&fd) else {
                continue; // duplicate close request this wake
            };
            let _ = epoll.delete(fd);
            conn.finish(shared, &metrics);
            if conn.admitted {
                trace_event!(
                    Level::Debug,
                    TRACE,
                    "connection closed",
                    conn = conn.conn_id
                );
                finish_admitted(shared, config.exit_after_conns, local_addr);
            }
            // Dropping the Conn closes the socket.
        }
        metrics
            .open_fds
            .set(i64::try_from(conns.len() + usize::from(listener_live)).unwrap_or(i64::MAX));
        if !listener_live && conns.is_empty() {
            break;
        }
    }
    trace_event!(
        Level::Info,
        TRACE,
        "shard reactor stopped",
        shard = index,
        open = conns.len()
    );
}

/// Drains a burst of pending accepts through the gate.
fn accept_burst(
    listener: &TcpListener,
    epoll: &Epoll,
    config: &ServerConfig,
    shared: &Shared,
    conns: &mut BTreeMap<RawFd, Conn>,
    now: Instant, // lint:allow(determinism): seeds idle-reap bookkeeping only, never a decision input
) {
    for _ in 0..ACCEPTS_PER_EVENT {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown poke (or a client racing it) — not a session,
            // not counted, exactly like the blocking acceptor's break.
            drop(stream);
            continue;
        }
        if shared.active.load(Ordering::SeqCst) >= config.max_conns as u64 {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.metrics.rejected_total.inc();
            trace_event!(
                Level::Warn,
                TRACE,
                "connection refused at accept gate",
                max_conns = config.max_conns
            );
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let fd = stream.as_raw_fd();
            let mut conn = Conn::refused(stream, now);
            conn.try_flush(now);
            if conn.desired().is_none() {
                continue; // Error{Busy} already flushed; drop closes it
            }
            if epoll.add(fd, Interest::Write, fd as u64).is_ok() {
                conn.interest = Some(Interest::Write);
                conns.insert(fd, conn);
            }
            continue;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        if let Some(bytes) = config.sndbuf {
            let _ = reactor::set_send_buffer(stream.as_raw_fd(), bytes);
        }
        let conn_id = shared.accepted.fetch_add(1, Ordering::SeqCst) + 1;
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.connections_total.inc();
        shared.metrics.connections_active.inc();
        trace_event!(Level::Debug, TRACE, "connection accepted", conn = conn_id);
        let fd = stream.as_raw_fd();
        let mut conn = Conn::admitted(stream, conn_id, now);
        if epoll.add(fd, Interest::Read, fd as u64).is_ok() {
            conn.interest = Some(Interest::Read);
            conns.insert(fd, conn);
        } else {
            // Registration failed: undo the admission like the blocking
            // acceptor does when a connection thread cannot spawn.
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.metrics.connections_active.dec();
            trace_event!(
                Level::Warn,
                TRACE,
                "registering a connection failed",
                conn = conn_id
            );
        }
    }
}

/// Post-connection bookkeeping, identical to the blocking path's: drop
/// the active count and, when an `exit_after_conns` quota is both
/// reached and fully drained, initiate shutdown and poke every shard
/// awake via a loopback connect.
fn finish_admitted(shared: &Shared, exit_after: Option<u64>, local_addr: Option<SocketAddr>) {
    let remaining = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
    shared.metrics.connections_active.dec();
    let Some(quota) = exit_after else { return };
    if remaining == 0 && shared.accepted.load(Ordering::SeqCst) >= quota {
        trace_event!(
            Level::Info,
            TRACE,
            "connection quota drained; shutting down",
            quota = quota
        );
        shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(addr) = local_addr {
            drop(std::net::TcpStream::connect(addr)); // wake the shards
        }
    }
}

/// Reconciles a connection's epoll registration with what it now wants;
/// a finished (or unregisterable) connection is queued for closing.
fn sync_conn(epoll: &Epoll, fd: RawFd, conn: &mut Conn, to_close: &mut Vec<RawFd>) {
    match conn.desired() {
        None => to_close.push(fd),
        Some(want) => {
            if conn.interest != Some(want) {
                if epoll.modify(fd, want, fd as u64).is_ok() {
                    conn.interest = Some(want);
                } else {
                    to_close.push(fd);
                }
            }
        }
    }
}
