//! The shard-local session layer: a thin adapter over the shared
//! [`DecisionEngine`] from `livephase-engine`.
//!
//! A [`SessionState`] is one client's decision engine — the exact
//! classify → predict → translate pipeline the in-process
//! `livephase_governor::Manager` delegates to, holding per-pid predictor
//! state and scoring. Because phase classification depends only on the
//! DVFS-invariant `mem_transactions / uops` ratio, a session fed the
//! counter stream an in-process run produces makes **bit-identical**
//! decisions to that run — the property the loopback integration tests
//! pin down.
//!
//! What remains serve-specific here is small by design: the
//! [`shard_for`] placement hash, and the sample/decision shapes the
//! shard loop batches through [`SessionState::apply_batch`].

use livephase_core::PredictorSpecError;
use livephase_engine::DecisionEngine;

pub use livephase_engine::{Decision, EngineConfig, EngineConfigError, Sample};

/// One client's session on a shard: a pid-indexed family of predictors
/// plus per-pid scoring, wrapped around the shared [`DecisionEngine`].
#[derive(Debug)]
pub struct SessionState {
    engine: DecisionEngine,
}

impl SessionState {
    /// Creates a session in deployment context `config` whose per-pid
    /// predictors are built from `predictor_spec` (e.g. `gpht:8:128`).
    ///
    /// # Errors
    ///
    /// Returns the spec error if the predictor specification does not
    /// parse — checked here, once, so the decision path cannot fail.
    pub fn new(config: &EngineConfig, predictor_spec: &str) -> Result<Self, PredictorSpecError> {
        Ok(Self {
            engine: DecisionEngine::from_spec(config.clone(), predictor_spec)?,
        })
    }

    /// Ingests one sample and returns the decision for that pid's next
    /// interval.
    pub fn apply(&mut self, pid: u32, uops: u64, mem_transactions: u64) -> Decision {
        self.engine.step(&Sample {
            pid,
            uops,
            mem_transactions,
        })
    }

    /// Drains a queued batch of samples through the engine, appending one
    /// decision per sample to `out` in input order — the shard loop's hot
    /// path. Bit-identical to calling [`apply`](Self::apply) per sample,
    /// but per-pid state lookups are amortized over runs of samples.
    pub fn apply_batch(&mut self, samples: &[Sample], out: &mut Vec<Decision>) {
        self.engine.step_many(samples, out);
    }

    /// Number of pid streams with live predictor state.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.engine.processes()
    }

    /// Drops a terminated pid's state.
    pub fn retire(&mut self, pid: u32) -> bool {
        self.engine.retire(pid)
    }
}

/// Deterministic shard assignment: FNV-1a over the client id, modulo the
/// shard count. Stable across runs and platforms, so a reconnecting
/// client always lands on the same shard.
///
/// # Panics
///
/// Panics if `shards` is zero — a server always has at least one shard,
/// enforced when its configuration is validated.
#[must_use]
pub fn shard_for(client_id: u64, shards: usize) -> usize {
    assert!(shards > 0, "a server has at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // `h % shards` is < shards by construction, and shards fits usize.
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_core::predictor_from_spec;
    use livephase_governor::{Manager, ManagerConfig, Proactive, TranslationTable};
    use livephase_pmsim::PlatformConfig;
    use livephase_workloads::{counter_samples, spec};

    #[test]
    fn bad_predictor_specs_are_rejected_once() {
        let config = EngineConfig::pentium_m();
        assert!(SessionState::new(&config, "gpht:0:128").is_err());
        assert!(SessionState::new(&config, "frobnicate").is_err());
        assert!(SessionState::new(&config, "gpht:8:128").is_ok());
    }

    #[test]
    fn session_decisions_match_the_in_process_manager() {
        let config = EngineConfig::pentium_m();
        let bench = spec::benchmark("applu_in").unwrap().with_length(80);
        let mut session = SessionState::new(&config, "gpht:8:128").unwrap();
        let decisions: Vec<u8> = counter_samples(bench.stream(42))
            .map(|s| session.apply(7, s.uops, s.mem_transactions).op_point)
            .collect();

        let report = Manager::gpht_deployed().run(bench.stream(42), &PlatformConfig::pentium_m());
        let expected = report.decision_trace();
        assert_eq!(decisions.len(), expected.len() + 1);
        for (i, (&got, &want)) in decisions.iter().zip(&expected).enumerate() {
            assert_eq!(usize::from(got), want, "decision {i} diverged");
        }
    }

    #[test]
    fn batched_sessions_match_sample_at_a_time_sessions() {
        let config = EngineConfig::pentium_m();
        let bench = spec::benchmark("applu_in").unwrap().with_length(80);
        let samples: Vec<Sample> = counter_samples(bench.stream(42))
            .map(|s| Sample {
                pid: 7,
                uops: s.uops,
                mem_transactions: s.mem_transactions,
            })
            .collect();

        let mut one = SessionState::new(&config, "gpht:8:128").unwrap();
        let expected: Vec<Decision> = samples
            .iter()
            .map(|s| one.apply(s.pid, s.uops, s.mem_transactions))
            .collect();

        let mut batched = SessionState::new(&config, "gpht:8:128").unwrap();
        let mut got = Vec::new();
        for chunk in samples.chunks(13) {
            batched.apply_batch(chunk, &mut got);
        }
        assert_eq!(got, expected, "batched decisions are bit-identical");
    }

    #[test]
    fn custom_predictor_sessions_match_their_manager() {
        let config = EngineConfig::pentium_m();
        let bench = spec::benchmark("crafty_in").unwrap().with_length(60);
        let mut session = SessionState::new(&config, "lastvalue").unwrap();
        let decisions: Vec<u8> = counter_samples(bench.stream(5))
            .map(|s| session.apply(1, s.uops, s.mem_transactions).op_point)
            .collect();

        let manager = Manager::new(
            Box::new(Proactive::new(
                predictor_from_spec("lastvalue").unwrap(),
                TranslationTable::pentium_m(),
            )),
            ManagerConfig::pentium_m(),
        );
        let expected = manager
            .run(bench.stream(5), &PlatformConfig::pentium_m())
            .decision_trace();
        for (i, (&got, &want)) in decisions.iter().zip(&expected).enumerate() {
            assert_eq!(usize::from(got), want, "decision {i} diverged");
        }
    }

    #[test]
    fn pids_are_isolated_within_a_session() {
        let config = EngineConfig::pentium_m();
        let mut session = SessionState::new(&config, "gpht:8:128").unwrap();
        // pid 1 alternates phases 1/6; pid 2 sits constant at phase 3.
        // 100M uops with 0 vs 4M memory transactions land in P1 and P6;
        // 1.2M lands in P3.
        for _ in 0..50 {
            let _ = session.apply(1, 100_000_000, 0);
            let _ = session.apply(1, 100_000_000, 4_000_000);
            let _ = session.apply(2, 100_000_000, 1_200_000);
        }
        assert_eq!(session.processes(), 2);
        // pid 1's GPHT anticipates the alternation; pid 2 stays put.
        let d1 = session.apply(1, 100_000_000, 0);
        assert_eq!(d1.op_point, 5, "after P1, pid 1 expects P6");
        let d2 = session.apply(2, 100_000_000, 1_200_000);
        assert_eq!(d2.op_point, 2, "pid 2 stays in P3");
        assert!(d2.confidence > 9_000, "constant stream predicts well");
        assert!(session.retire(1));
        assert_eq!(session.processes(), 1);
        assert!(!session.retire(1));
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 64] {
            for client in 0..200u64 {
                let s = shard_for(client, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(client, shards), "deterministic");
            }
        }
        // FNV spreads consecutive ids over shards rather than striping.
        let hits: std::collections::HashSet<usize> = (0..64u64).map(|c| shard_for(c, 8)).collect();
        assert!(hits.len() >= 4, "consecutive ids cover several shards");
    }
}
