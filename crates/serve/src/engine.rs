//! The shard-local session engine: per-client, per-process predictor
//! state and the classify → predict → translate decision pipeline.
//!
//! This module is pure — no sockets, no threads — so the decision path
//! can be unit-tested and benchmarked in isolation. A [`SessionState`] is
//! exactly the management loop of `livephase_governor::Manager::handle_pmi`
//! minus the simulated CPU: classify the observed Mem/Uop rate, feed the
//! per-pid predictor, translate the predicted phase to an operating
//! point. Because phase classification depends only on the DVFS-invariant
//! `mem_transactions / uops` ratio, a session fed the counter stream an
//! in-process run produces makes **bit-identical** decisions to that run
//! — the property the loopback integration tests pin down.

use livephase_core::{
    predictor_from_spec, MemUopRate, PerProcess, PhaseId, PhaseMap, PhaseSample, Predictor,
    PredictorSpecError,
};
use livephase_governor::TranslationTable;
use std::collections::HashMap;

/// The fixed context every session on a server shares: phase definitions
/// and the phase → operating-point translation table.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Platform name clients must announce in `Hello`.
    pub platform: String,
    /// The Mem/Uop → phase classification in force.
    pub phase_map: PhaseMap,
    /// The phase → DVFS setting mapping in force.
    pub table: TranslationTable,
}

impl EngineConfig {
    /// The deployed configuration: Table 1 phases over the Table 2
    /// mapping, as on the paper's Pentium M.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            platform: "pentium_m".to_owned(),
            phase_map: PhaseMap::pentium_m(),
            table: TranslationTable::pentium_m(),
        }
    }

    /// Number of operating points decisions index into.
    #[must_use]
    pub fn op_points(&self) -> u8 {
        u8::try_from(self.table.settings().len()).expect("op tables are small")
    }
}

/// One computed decision, ready to be framed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Process the decision is for.
    pub pid: u32,
    /// Operating-point index to apply next (0 = fastest).
    pub op_point: u8,
    /// Running prediction accuracy of this pid's stream, in basis points
    /// (10 000 = every scored prediction so far was correct).
    pub confidence: u16,
}

/// Per-pid prediction scoring, mirroring the manager's accuracy
/// accounting: the prediction standing when a sample arrives is scored
/// against the sample's observed phase.
#[derive(Debug, Default, Clone, Copy)]
struct PidScore {
    pending: Option<PhaseId>,
    total: u64,
    correct: u64,
}

impl PidScore {
    fn confidence(&self) -> u16 {
        match (self.correct * u64::from(crate::wire::CONFIDENCE_SCALE)).checked_div(self.total) {
            None => crate::wire::CONFIDENCE_SCALE,
            Some(bp) => u16::try_from(bp).expect("ratio <= scale"),
        }
    }
}

type BoxedFactory = Box<dyn Fn() -> Box<dyn Predictor> + Send>;

/// One client's session on a shard: a pid-indexed family of predictors
/// plus per-pid scoring.
pub struct SessionState {
    predictors: PerProcess<Box<dyn Predictor>, BoxedFactory>,
    scores: HashMap<u32, PidScore>,
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("processes", &self.processes())
            .finish()
    }
}

impl SessionState {
    /// Creates a session whose per-pid predictors are built from
    /// `predictor_spec` (e.g. `gpht:8:128`).
    ///
    /// # Errors
    ///
    /// Returns the spec error if the predictor specification does not
    /// parse — checked here, once, so the per-pid factory cannot fail.
    pub fn new(predictor_spec: &str) -> Result<Self, PredictorSpecError> {
        // Validate eagerly; the factory then re-parses a known-good spec.
        drop(predictor_from_spec(predictor_spec)?);
        let spec = predictor_spec.to_owned();
        let factory: BoxedFactory =
            Box::new(move || predictor_from_spec(&spec).expect("spec validated at session start"));
        Ok(Self {
            predictors: PerProcess::new(factory),
            scores: HashMap::new(),
        })
    }

    /// Ingests one sample and returns the decision for that pid's next
    /// interval — the PMI handler's step 2–4, verbatim: classify the
    /// observed rate, update the predictor, translate the prediction.
    pub fn apply(
        &mut self,
        config: &EngineConfig,
        pid: u32,
        uops: u64,
        mem_trans: u64,
    ) -> Decision {
        let rate = MemUopRate::from_counts(mem_trans, uops);
        let phase = config.phase_map.classify_rate(rate);
        let score = self.scores.entry(pid).or_default();
        if let Some(predicted) = score.pending {
            score.total += 1;
            if predicted == phase {
                score.correct += 1;
            }
        }
        let predicted = self.predictors.next(pid, PhaseSample { rate, phase });
        score.pending = Some(predicted);
        let setting = config.table.setting_for(predicted);
        Decision {
            pid,
            op_point: u8::try_from(setting).expect("op tables are small"),
            confidence: self.scores[&pid].confidence(),
        }
    }

    /// Number of pid streams with live predictor state.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.predictors.processes()
    }

    /// Drops a terminated pid's state.
    pub fn retire(&mut self, pid: u32) -> bool {
        self.scores.remove(&pid);
        self.predictors.retire(pid)
    }
}

/// Deterministic shard assignment: FNV-1a over the client id, modulo the
/// shard count. Stable across runs and platforms, so a reconnecting
/// client always lands on the same shard.
#[must_use]
pub fn shard_for(client_id: u64, shards: usize) -> usize {
    assert!(shards > 0, "a server has at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    usize::try_from(h % shards as u64).expect("modulo fits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_governor::{Manager, ManagerConfig, Proactive};
    use livephase_pmsim::PlatformConfig;
    use livephase_workloads::{counter_samples, spec};

    #[test]
    fn bad_predictor_specs_are_rejected_once() {
        assert!(SessionState::new("gpht:0:128").is_err());
        assert!(SessionState::new("frobnicate").is_err());
        assert!(SessionState::new("gpht:8:128").is_ok());
    }

    #[test]
    fn session_decisions_match_the_in_process_manager() {
        let config = EngineConfig::pentium_m();
        let bench = spec::benchmark("applu_in").unwrap().with_length(80);
        let mut session = SessionState::new("gpht:8:128").unwrap();
        let decisions: Vec<u8> = counter_samples(bench.stream(42))
            .map(|s| {
                session
                    .apply(&config, 7, s.uops, s.mem_transactions)
                    .op_point
            })
            .collect();

        let report = Manager::gpht_deployed().run(bench.stream(42), &PlatformConfig::pentium_m());
        let expected = report.decision_trace();
        assert_eq!(decisions.len(), expected.len() + 1);
        for (i, (&got, &want)) in decisions.iter().zip(&expected).enumerate() {
            assert_eq!(usize::from(got), want, "decision {i} diverged");
        }
    }

    #[test]
    fn custom_predictor_sessions_match_their_manager() {
        let config = EngineConfig::pentium_m();
        let bench = spec::benchmark("crafty_in").unwrap().with_length(60);
        let mut session = SessionState::new("lastvalue").unwrap();
        let decisions: Vec<u8> = counter_samples(bench.stream(5))
            .map(|s| {
                session
                    .apply(&config, 1, s.uops, s.mem_transactions)
                    .op_point
            })
            .collect();

        let manager = Manager::new(
            Box::new(Proactive::new(
                predictor_from_spec("lastvalue").unwrap(),
                TranslationTable::pentium_m(),
            )),
            ManagerConfig::pentium_m(),
        );
        let expected = manager
            .run(bench.stream(5), &PlatformConfig::pentium_m())
            .decision_trace();
        for (i, (&got, &want)) in decisions.iter().zip(&expected).enumerate() {
            assert_eq!(usize::from(got), want, "decision {i} diverged");
        }
    }

    #[test]
    fn pids_are_isolated_within_a_session() {
        let config = EngineConfig::pentium_m();
        let mut session = SessionState::new("gpht:8:128").unwrap();
        // pid 1 alternates phases 1/6; pid 2 sits constant at phase 3.
        // 100M uops with 0 vs 4M memory transactions land in P1 and P6;
        // 1.2M lands in P3.
        for _ in 0..50 {
            let _ = session.apply(&config, 1, 100_000_000, 0);
            let _ = session.apply(&config, 1, 100_000_000, 4_000_000);
            let _ = session.apply(&config, 2, 100_000_000, 1_200_000);
        }
        assert_eq!(session.processes(), 2);
        // pid 1's GPHT anticipates the alternation; pid 2 stays put.
        let d1 = session.apply(&config, 1, 100_000_000, 0);
        assert_eq!(d1.op_point, 5, "after P1, pid 1 expects P6");
        let d2 = session.apply(&config, 2, 100_000_000, 1_200_000);
        assert_eq!(d2.op_point, 2, "pid 2 stays in P3");
        assert!(d2.confidence > 9_000, "constant stream predicts well");
        assert!(session.retire(1));
        assert_eq!(session.processes(), 1);
        assert!(!session.retire(1));
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 64] {
            for client in 0..200u64 {
                let s = shard_for(client, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(client, shards), "deterministic");
            }
        }
        // FNV spreads consecutive ids over shards rather than striping.
        let hits: std::collections::HashSet<usize> = (0..64u64).map(|c| shard_for(c, 8)).collect();
        assert!(hits.len() >= 4, "consecutive ids cover several shards");
    }
}
