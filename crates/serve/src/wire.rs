//! The `livephase-serve` wire protocol: versioned, length-prefixed binary
//! frames.
//!
//! Every frame on the socket is
//!
//! ```text
//! u32 LE payload length | u8 frame tag | body (fixed-width LE fields,
//!                                             strings as u16 length + UTF-8)
//! ```
//!
//! The payload length covers the tag and body and must lie in
//! `1..=MAX_FRAME_BYTES`; anything outside that range is rejected before a
//! single payload byte is read, so an adversarial length prefix cannot
//! make the server allocate. Decoding is total: every error path returns a
//! [`DecodeError`], never panics, and a frame must consume its payload
//! exactly (trailing bytes are an error, which keeps the protocol
//! extensible only through new tags and the version field).
//!
//! A connection opens with a version handshake: the client's first frame
//! must be [`Frame::Hello`], the server answers [`Frame::HelloAck`] (or an
//! [`Frame::Error`] and closes). After that the client streams
//! [`Frame::Sample`]s and the server answers one [`Frame::Decision`] per
//! sample, in order, batched per socket flush.

use std::fmt;
use std::io::{self, Read, Write};

/// Newest protocol version spoken by this build. Version 2 added the
/// [`Frame::MetricsRequest`] / [`Frame::Metrics`] exposition scrape.
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest protocol version this build still serves. A server receiving
/// a `Hello` version outside `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION`
/// answers with [`ErrorCode::VersionMismatch`] and closes the
/// connection; inside the range, the session speaks the client's
/// version (echoed in `HelloAck`), and v2-only frames from a v1 session
/// are [`ErrorCode::Protocol`] violations.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Hard ceiling on the payload length of a single frame.
///
/// Large enough for any frame this protocol defines (strings are capped
/// at `u16::MAX` by their length field), small enough that a hostile
/// length prefix cannot cause a large allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Confidence scale: [`Frame::Decision`] carries the shard's running
/// prediction accuracy for the stream in basis points, `0..=10_000` —
/// the engine-wide scale, re-exported so wire consumers need not depend
/// on `livephase-core` directly.
pub use livephase_core::CONFIDENCE_SCALE;

/// Ceiling on the exposition text a [`Frame::Metrics`] may carry,
/// chosen so the string length (u16), tag and length prefix all stay
/// comfortably inside [`MAX_FRAME_BYTES`]. Servers truncate the
/// rendered text at a line boundary below this before framing it.
pub const MAX_METRICS_TEXT_BYTES: usize = 60 * 1024;

/// Why the server (or client) is about to give up on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer speaks a different protocol version.
    VersionMismatch,
    /// A frame failed to decode; the connection is poisoned.
    Malformed,
    /// The server is at its `--max-conns` accept gate.
    Busy,
    /// The connection sat idle past the read timeout.
    IdleTimeout,
    /// The `Hello` named an unknown platform or predictor configuration.
    BadConfig,
    /// A well-formed frame arrived out of protocol order (e.g. `Sample`
    /// before `Hello`).
    Protocol,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The peer stopped draining its socket: the sender's bounded
    /// outbound queue overflowed and the connection is being shed.
    SlowConsumer,
}

impl ErrorCode {
    /// Stable snake_case name, used as a metrics label value
    /// (`serve_errors_total{code="..."}`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::VersionMismatch => "version_mismatch",
            Self::Malformed => "malformed",
            Self::Busy => "busy",
            Self::IdleTimeout => "idle_timeout",
            Self::BadConfig => "bad_config",
            Self::Protocol => "protocol",
            Self::ShuttingDown => "shutting_down",
            Self::SlowConsumer => "slow_consumer",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Self::VersionMismatch => 1,
            Self::Malformed => 2,
            Self::Busy => 3,
            Self::IdleTimeout => 4,
            Self::BadConfig => 5,
            Self::Protocol => 6,
            Self::ShuttingDown => 7,
            Self::SlowConsumer => 8,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::VersionMismatch,
            2 => Self::Malformed,
            3 => Self::Busy,
            4 => Self::IdleTimeout,
            5 => Self::BadConfig,
            6 => Self::Protocol,
            7 => Self::ShuttingDown,
            8 => Self::SlowConsumer,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::VersionMismatch => "version mismatch",
            Self::Malformed => "malformed frame",
            Self::Busy => "server busy",
            Self::IdleTimeout => "idle timeout",
            Self::BadConfig => "bad configuration",
            Self::Protocol => "protocol violation",
            Self::ShuttingDown => "shutting down",
            Self::SlowConsumer => "slow consumer",
        };
        f.write_str(s)
    }
}

/// Aggregate service counters, shipped in a [`Frame::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Samples ingested since the server started.
    pub samples: u64,
    /// Decisions computed since the server started.
    pub decisions: u64,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Logical processes (pid streams) with live predictor state.
    pub processes: u64,
    /// Number of shards serving.
    pub shards: u32,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server, first frame: version handshake plus the session
    /// configuration (platform name and predictor spec, e.g.
    /// `"pentium_m"` / `"gpht:8:128"`). `client_id` selects the shard.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Stable client identity; shard assignment hashes this.
        client_id: u64,
        /// Platform the client's counters come from.
        platform: String,
        /// Predictor specification for this session's streams.
        predictor: String,
    },
    /// Server → client: handshake accepted.
    HelloAck {
        /// Protocol version the server speaks.
        version: u16,
        /// Shard index the session landed on.
        shard: u32,
        /// Number of DVFS operating points decisions index into.
        op_points: u8,
    },
    /// Client → server: one sampling interval's counter readings for one
    /// logical process.
    Sample {
        /// Process the interval belongs to (per-pid predictor state).
        pid: u32,
        /// Micro-ops retired in the interval.
        uops: u64,
        /// Memory bus transactions in the interval.
        mem_trans: u64,
        /// TSC delta of the interval (informational; decisions never
        /// depend on it).
        tsc_delta: u64,
    },
    /// Server → client: the DVFS operating point to apply for `pid`'s
    /// next interval.
    Decision {
        /// Process the decision is for.
        pid: u32,
        /// Operating-point index (0 = fastest).
        op_point: u8,
        /// Running prediction accuracy for this stream, in basis points
        /// of [`CONFIDENCE_SCALE`].
        confidence: u16,
    },
    /// Client → server: request a [`Frame::Stats`]. Answered in-order
    /// with the connection's decision stream.
    StatsRequest,
    /// Server → client: aggregate service counters.
    Stats(StatsSnapshot),
    /// Either direction: the connection is being abandoned and why. The
    /// sender closes after this frame.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Client → server: clean close. The server flushes any in-flight
    /// decisions and closes the connection.
    Goodbye,
    /// Client → server (v2+): request a [`Frame::Metrics`] exposition
    /// scrape. Answered in-order with the connection's decision stream.
    MetricsRequest,
    /// Server → client (v2+): the metrics registry rendered in the
    /// Prometheus text exposition format, truncated at a line boundary
    /// to at most [`MAX_METRICS_TEXT_BYTES`].
    Metrics {
        /// The exposition text.
        text: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_SAMPLE: u8 = 3;
const TAG_DECISION: u8 = 4;
const TAG_STATS_REQUEST: u8 = 5;
const TAG_STATS: u8 = 6;
const TAG_ERROR: u8 = 7;
const TAG_GOODBYE: u8 = 8;
const TAG_METRICS_REQUEST: u8 = 9;
const TAG_METRICS: u8 = 10;

/// A frame that failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The length prefix was zero or exceeded [`MAX_FRAME_BYTES`].
    BadLength(usize),
    /// The payload ended before the frame's fields did.
    Truncated,
    /// The payload had bytes left over after the frame's fields.
    TrailingBytes(usize),
    /// The frame tag is not part of this protocol version.
    UnknownTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// An error frame carried an unknown error code.
    BadErrorCode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadLength(n) => write!(f, "frame length {n} outside 1..={MAX_FRAME_BYTES}"),
            Self::Truncated => write!(f, "payload truncated"),
            Self::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            Self::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            Self::BadString => write!(f, "string field is not UTF-8"),
            Self::BadErrorCode(c) => write!(f, "unknown error code {c}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A frame-level read failure: either the socket failed or the bytes did.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (includes read/write timeouts).
    Io(io::Error),
    /// The bytes arrived but are not a frame.
    Decode(DecodeError),
}

impl FrameError {
    /// Whether this is a socket timeout (`WouldBlock`/`TimedOut`).
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            Self::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    // Protocol strings are length-prefixed with a u16; anything longer
    // is truncated at a char boundary rather than panicking (no frame
    // this protocol defines legitimately carries one — error messages
    // and metrics text are bounded well below this upstream).
    let mut bytes = s.as_bytes();
    if bytes.len() > usize::from(u16::MAX) {
        let mut end = usize::from(u16::MAX);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        bytes = &bytes[..end]; // lint:allow(no-panic-path): end <= u16::MAX < bytes.len() here
    }
    let len = u16::try_from(bytes.len()).unwrap_or(u16::MAX);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Encodes a frame's payload (tag + body), without the length prefix.
#[must_use]
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    encode_payload_into(frame, &mut buf);
    buf
}

/// Encodes a frame's payload (tag + body) by appending to `buf`,
/// without the length prefix and without allocating a fresh vector —
/// the hot-path variant for write loops that reuse an outbound buffer.
pub fn encode_payload_into(frame: &Frame, buf: &mut Vec<u8>) {
    match frame {
        Frame::Hello {
            version,
            client_id,
            platform,
            predictor,
        } => {
            buf.push(TAG_HELLO);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&client_id.to_le_bytes());
            put_str(buf, platform);
            put_str(buf, predictor);
        }
        Frame::HelloAck {
            version,
            shard,
            op_points,
        } => {
            buf.push(TAG_HELLO_ACK);
            buf.extend_from_slice(&version.to_le_bytes());
            buf.extend_from_slice(&shard.to_le_bytes());
            buf.push(*op_points);
        }
        Frame::Sample {
            pid,
            uops,
            mem_trans,
            tsc_delta,
        } => {
            buf.push(TAG_SAMPLE);
            buf.extend_from_slice(&pid.to_le_bytes());
            buf.extend_from_slice(&uops.to_le_bytes());
            buf.extend_from_slice(&mem_trans.to_le_bytes());
            buf.extend_from_slice(&tsc_delta.to_le_bytes());
        }
        Frame::Decision {
            pid,
            op_point,
            confidence,
        } => {
            buf.push(TAG_DECISION);
            buf.extend_from_slice(&pid.to_le_bytes());
            buf.push(*op_point);
            buf.extend_from_slice(&confidence.to_le_bytes());
        }
        Frame::StatsRequest => buf.push(TAG_STATS_REQUEST),
        Frame::Stats(s) => {
            buf.push(TAG_STATS);
            buf.extend_from_slice(&s.samples.to_le_bytes());
            buf.extend_from_slice(&s.decisions.to_le_bytes());
            buf.extend_from_slice(&s.connections.to_le_bytes());
            buf.extend_from_slice(&s.active_connections.to_le_bytes());
            buf.extend_from_slice(&s.processes.to_le_bytes());
            buf.extend_from_slice(&s.shards.to_le_bytes());
        }
        Frame::Error { code, message } => {
            buf.push(TAG_ERROR);
            buf.push(code.to_u8());
            put_str(buf, message);
        }
        Frame::Goodbye => buf.push(TAG_GOODBYE),
        Frame::MetricsRequest => buf.push(TAG_METRICS_REQUEST),
        Frame::Metrics { text } => {
            buf.push(TAG_METRICS);
            put_str(buf, text);
        }
    }
}

/// Encodes a frame to its full wire form: length prefix plus payload.
#[must_use]
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(36);
    encode_into(frame, &mut out);
    out
}

/// Encodes a frame to its full wire form (length prefix plus payload)
/// by appending to `out`, allocating nothing beyond amortized buffer
/// growth. This is the shard write path: one reusable outbound buffer
/// per connection accumulates many frames per socket flush, so the
/// steady-state decision stream performs zero per-frame allocations.
pub fn encode_into(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    encode_payload_into(frame, out);
    // Payloads are structurally bounded far below u32::MAX: strings are
    // u16-length-prefixed and every other field is fixed-width.
    let payload_len = out.len() - start - 4;
    let len = u32::try_from(payload_len).unwrap_or_else(|_| unreachable!("payload fits in u32"));
    match out.get_mut(start..start + 4) {
        Some(prefix) => prefix.copy_from_slice(&len.to_le_bytes()),
        None => unreachable!("length prefix was reserved above"),
    }
}

/// Sequential little-endian field reader over a frame payload.
struct Fields<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Fields<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// [`take`](Self::take) into a fixed-width array, for the LE integer
    /// readers below — infallible once `take` has supplied `N` bytes.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let mut arr = [0u8; N];
        arr.copy_from_slice(self.take(N)?);
        Ok(arr)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0]) // lint:allow(no-panic-path): take(1) returned exactly one byte
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take_arr()?))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }

    fn finish(self) -> Result<(), DecodeError> {
        let left = self.bytes.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(left))
        }
    }
}

/// Decodes one frame from its payload bytes (tag + body, no length
/// prefix).
///
/// # Errors
///
/// Returns a [`DecodeError`] for an empty payload, an unknown tag, a
/// truncated body, trailing bytes, a non-UTF-8 string, or an unknown
/// error code — never panics, whatever the input.
pub fn decode_payload(payload: &[u8]) -> Result<Frame, DecodeError> {
    if payload.is_empty() {
        return Err(DecodeError::BadLength(0));
    }
    let mut f = Fields {
        bytes: payload,
        pos: 0,
    };
    let tag = f.u8()?;
    let frame = match tag {
        TAG_HELLO => Frame::Hello {
            version: f.u16()?,
            client_id: f.u64()?,
            platform: f.string()?,
            predictor: f.string()?,
        },
        TAG_HELLO_ACK => Frame::HelloAck {
            version: f.u16()?,
            shard: f.u32()?,
            op_points: f.u8()?,
        },
        TAG_SAMPLE => Frame::Sample {
            pid: f.u32()?,
            uops: f.u64()?,
            mem_trans: f.u64()?,
            tsc_delta: f.u64()?,
        },
        TAG_DECISION => Frame::Decision {
            pid: f.u32()?,
            op_point: f.u8()?,
            confidence: f.u16()?,
        },
        TAG_STATS_REQUEST => Frame::StatsRequest,
        TAG_STATS => Frame::Stats(StatsSnapshot {
            samples: f.u64()?,
            decisions: f.u64()?,
            connections: f.u64()?,
            active_connections: f.u64()?,
            processes: f.u64()?,
            shards: f.u32()?,
        }),
        TAG_ERROR => {
            let code = f.u8()?;
            Frame::Error {
                code: ErrorCode::from_u8(code).ok_or(DecodeError::BadErrorCode(code))?,
                message: f.string()?,
            }
        }
        TAG_GOODBYE => Frame::Goodbye,
        TAG_METRICS_REQUEST => Frame::MetricsRequest,
        TAG_METRICS => Frame::Metrics { text: f.string()? },
        other => return Err(DecodeError::UnknownTag(other)),
    };
    f.finish()?;
    Ok(frame)
}

/// Writes one frame to `w` (buffered writers batch; call `flush`
/// yourself).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))
}

/// Reads one length-prefixed frame from `r`.
///
/// The length prefix is validated against [`MAX_FRAME_BYTES`] *before*
/// any payload is read, so an adversarial prefix cannot force an
/// allocation; a bad length or undecodable payload poisons only this
/// connection.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure (including read timeouts —
/// see [`FrameError::is_timeout`]); [`FrameError::Decode`] on a bad
/// length prefix or payload.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(DecodeError::BadLength(len).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(decode_payload(&payload)?)
}

/// Like [`read_frame`], but also reports how long *decoding* took —
/// the time from the last payload byte being in memory to a typed
/// [`Frame`] — so instrumented servers can histogram decode latency
/// without folding in socket blocking time.
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_timed(r: &mut impl Read) -> Result<(Frame, std::time::Duration), FrameError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(DecodeError::BadLength(len).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    // lint:allow(determinism): times decode for the latency histogram only
    let started = std::time::Instant::now();
    let frame = decode_payload(&payload)?;
    Ok((frame, started.elapsed()))
}

/// Once the consumed prefix of the decode buffer grows past this, the
/// remaining bytes are shifted to the front so the buffer's capacity
/// stays bounded by the largest burst, not the lifetime byte count.
const DECODER_COMPACT_BYTES: usize = 16 * 1024;

/// Incremental, resumable frame decoder for non-blocking reads.
///
/// Blocking connections can use [`read_frame`], which owns the socket
/// until a whole frame arrives. A reactor cannot: a readiness event
/// delivers however many bytes the kernel has — half a length prefix,
/// three frames and a torn fourth — and the decoder must bank them and
/// resume later. `FrameDecoder` accepts arbitrary byte-boundary splits
/// via [`feed`](Self::feed) and yields exactly the frames a one-shot
/// decode of the concatenated stream would, in order.
///
/// The internal buffer is reused across frames and compacted as the
/// consumed prefix grows, so steady-state decoding of fixed-width
/// frames ([`Frame::Sample`], [`Frame::Decision`]) performs no
/// per-frame heap allocation. Errors are terminal for the stream, as
/// everywhere else in this protocol: the caller poisons the connection
/// and drops the decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    /// Times [`next_frame`](Self::next_frame) came up empty-handed with
    /// a torn frame banked — resumes attributable to the frame at the
    /// head of the buffer.
    head_resumes: u32,
    /// Resumes the most recently yielded frame needed (telemetry).
    last_resumes: u32,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Banks `bytes` for decoding. Call [`next_frame`](Self::next_frame)
    /// until it returns `Ok(None)` to drain every completed frame.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes banked but not yet consumed by a yielded frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// How many resumed `next_frame` attempts the most recently yielded
    /// frame needed before its bytes were complete (0 when the frame
    /// arrived whole in one feed) — the reactor's decode-resume
    /// histogram samples this.
    #[must_use]
    pub fn last_resumes(&self) -> u32 {
        self.last_resumes
    }

    /// Yields the next complete frame, or `Ok(None)` when the banked
    /// bytes end mid-frame (feed more and retry).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] exactly where the one-shot path would:
    /// a length prefix outside `1..=MAX_FRAME_BYTES`, or a payload
    /// [`decode_payload`] rejects. Errors poison the stream; the caller
    /// is expected to drop the decoder with its connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        let Some(avail) = self.buf.len().checked_sub(self.pos) else {
            unreachable!("consumed prefix never exceeds buffer length")
        };
        if avail < 4 {
            return Ok(self.pending(avail));
        }
        let Some(len_bytes) = self.buf.get(self.pos..self.pos + 4) else {
            unreachable!("avail >= 4 bytes were checked above")
        };
        let mut arr = [0u8; 4];
        arr.copy_from_slice(len_bytes);
        let len = u32::from_le_bytes(arr) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(DecodeError::BadLength(len));
        }
        if avail < 4 + len {
            return Ok(self.pending(avail));
        }
        let Some(payload) = self.buf.get(self.pos + 4..self.pos + 4 + len) else {
            unreachable!("avail >= 4 + len bytes were checked above")
        };
        let frame = decode_payload(payload)?;
        self.pos += 4 + len;
        self.last_resumes = self.head_resumes;
        self.head_resumes = 0;
        self.compact();
        Ok(Some(frame))
    }

    /// Bookkeeping for an incomplete head frame: counts the resume (a
    /// torn frame is banked) and compacts so a long-lived connection's
    /// buffer does not creep.
    fn pending(&mut self, avail: usize) -> Option<Frame> {
        if avail > 0 {
            self.head_resumes = self.head_resumes.saturating_add(1);
        }
        self.compact();
        None
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= DECODER_COMPACT_BYTES {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Truncates exposition text to at most [`MAX_METRICS_TEXT_BYTES`],
/// cutting at a line boundary so a scrape never ends mid-series. The
/// common (untruncated) case borrows; only oversized registries copy.
#[must_use]
pub fn truncate_metrics_text(text: &str) -> &str {
    if text.len() <= MAX_METRICS_TEXT_BYTES {
        return text;
    }
    // Scan bytes so the cut never lands inside a multi-byte character
    // ('\n' is ASCII, so byte position == char boundary).
    // lint:allow(no-panic-path): the early return above guarantees
    // text.len() > MAX_METRICS_TEXT_BYTES, so both slices are in range.
    let cut = text.as_bytes()[..MAX_METRICS_TEXT_BYTES]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    &text[..cut] // lint:allow(no-panic-path): cut <= MAX_METRICS_TEXT_BYTES < text.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame) {
        let bytes = encode(frame);
        let (prefix, payload) = bytes.split_at(4);
        assert_eq!(
            u32::from_le_bytes(prefix.try_into().unwrap()) as usize,
            payload.len()
        );
        assert_eq!(&decode_payload(payload).unwrap(), frame);
        // And through the streaming reader.
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(&read_frame(&mut cursor).unwrap(), frame);
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip(&Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id: 0xDEAD_BEEF_0123,
            platform: "pentium_m".into(),
            predictor: "gpht:8:128".into(),
        });
        round_trip(&Frame::HelloAck {
            version: PROTOCOL_VERSION,
            shard: 3,
            op_points: 6,
        });
        round_trip(&Frame::Sample {
            pid: 42,
            uops: 100_000_000,
            mem_trans: 1_234_567,
            tsc_delta: 987_654_321,
        });
        round_trip(&Frame::Decision {
            pid: 42,
            op_point: 5,
            confidence: 9_876,
        });
        round_trip(&Frame::StatsRequest);
        round_trip(&Frame::Stats(StatsSnapshot {
            samples: 1,
            decisions: 2,
            connections: 3,
            active_connections: 4,
            processes: 5,
            shards: 6,
        }));
        round_trip(&Frame::Error {
            code: ErrorCode::Malformed,
            message: "tag 200 is not a frame".into(),
        });
        round_trip(&Frame::Goodbye);
        round_trip(&Frame::MetricsRequest);
        round_trip(&Frame::Metrics {
            text: "# TYPE serve_connections_total counter\nserve_connections_total 3\n".into(),
        });
    }

    #[test]
    fn version_range_is_sane() {
        assert_eq!(MIN_PROTOCOL_VERSION, 1, "v1 sessions must stay served");
        assert_eq!(PROTOCOL_VERSION, 2, "v2 added the metrics scrape");
    }

    #[test]
    fn metrics_truncation_respects_line_boundaries() {
        // Short text passes through untouched.
        let short = "a_total 1\nb_total 2\n";
        assert_eq!(truncate_metrics_text(short), short);
        // Oversized text is cut at the last newline under the cap —
        // with a multi-byte char (µ) straddling everywhere to prove the
        // cut never lands mid-character.
        let line = "lat_µs_bucket{le=\"31\"} 4\n";
        let long = line.repeat(MAX_METRICS_TEXT_BYTES / line.len() + 10);
        let cut = truncate_metrics_text(&long);
        assert!(cut.len() <= MAX_METRICS_TEXT_BYTES);
        assert!(cut.ends_with('\n'), "cut mid-line");
        assert_eq!(cut.len() % line.len(), 0, "cut at a whole line");
        // A truncated scrape still frames and round-trips.
        round_trip(&Frame::Metrics { text: cut.into() });
        // Degenerate: one giant line with no newline under the cap.
        let giant = "x".repeat(MAX_METRICS_TEXT_BYTES + 5);
        assert_eq!(truncate_metrics_text(&giant), "");
    }

    #[test]
    fn decode_timing_is_reported_without_breaking_round_trips() {
        let frame = Frame::Sample {
            pid: 1,
            uops: 2,
            mem_trans: 3,
            tsc_delta: 4,
        };
        let mut cursor = io::Cursor::new(encode(&frame));
        let (got, elapsed) = read_frame_timed(&mut cursor).unwrap();
        assert_eq!(got, frame);
        assert!(elapsed < std::time::Duration::from_secs(1));
    }

    #[test]
    fn empty_and_unknown_payloads_are_rejected() {
        assert_eq!(decode_payload(&[]), Err(DecodeError::BadLength(0)));
        assert_eq!(decode_payload(&[200]), Err(DecodeError::UnknownTag(200)));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let payload = encode_payload(&Frame::Sample {
            pid: 1,
            uops: 2,
            mem_trans: 3,
            tsc_delta: 4,
        });
        for cut in 1..payload.len() {
            assert_eq!(
                decode_payload(&payload[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
        let mut padded = payload;
        padded.push(0);
        assert_eq!(decode_payload(&padded), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_reading() {
        let mut bytes = (u32::try_from(MAX_FRAME_BYTES).unwrap() + 1)
            .to_le_bytes()
            .to_vec();
        bytes.push(TAG_GOODBYE);
        let mut cursor = io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(FrameError::Decode(DecodeError::BadLength(n))) => {
                assert_eq!(n, MAX_FRAME_BYTES + 1);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    #[test]
    fn bad_strings_and_codes_are_rejected() {
        // Hello with invalid UTF-8 in the platform string.
        let mut payload = vec![TAG_HELLO];
        payload.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        payload.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(decode_payload(&payload), Err(DecodeError::BadString));

        let mut payload = vec![TAG_ERROR, 99];
        payload.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(decode_payload(&payload), Err(DecodeError::BadErrorCode(99)));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::VersionMismatch,
            ErrorCode::Malformed,
            ErrorCode::Busy,
            ErrorCode::IdleTimeout,
            ErrorCode::BadConfig,
            ErrorCode::Protocol,
            ErrorCode::ShuttingDown,
            ErrorCode::SlowConsumer,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(0), None);
    }

    #[test]
    fn encode_into_matches_encode_and_appends() {
        let frames = [
            Frame::Sample {
                pid: 7,
                uops: 1,
                mem_trans: 2,
                tsc_delta: 3,
            },
            Frame::Decision {
                pid: 7,
                op_point: 4,
                confidence: 5_000,
            },
            Frame::Error {
                code: ErrorCode::SlowConsumer,
                message: "queue overflow".into(),
            },
        ];
        let mut out = Vec::new();
        let mut expect = Vec::new();
        for frame in &frames {
            encode_into(frame, &mut out);
            expect.extend_from_slice(&encode(frame));
        }
        assert_eq!(out, expect, "encode_into must append identical bytes");
    }

    #[test]
    fn frame_decoder_handles_split_and_batched_frames() {
        let frames = [
            Frame::Hello {
                version: PROTOCOL_VERSION,
                client_id: 9,
                platform: "pentium_m".into(),
                predictor: "gpht:8:128".into(),
            },
            Frame::Sample {
                pid: 1,
                uops: 10,
                mem_trans: 20,
                tsc_delta: 30,
            },
            Frame::Goodbye,
        ];
        let mut stream = Vec::new();
        for frame in &frames {
            encode_into(frame, &mut stream);
        }

        // One byte at a time.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for byte in &stream {
            dec.feed(std::slice::from_ref(byte));
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);
        assert!(dec.last_resumes() > 0, "torn frames must count resumes");

        // All at once: whole-feed frames report zero resumes.
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        for frame in &frames {
            assert_eq!(dec.next_frame().unwrap().as_ref(), Some(frame));
            assert_eq!(dec.last_resumes(), 0);
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_decoder_rejects_bad_lengths_like_the_stream_reader() {
        let mut dec = FrameDecoder::new();
        dec.feed(&0u32.to_le_bytes());
        assert_eq!(dec.next_frame(), Err(DecodeError::BadLength(0)));

        let mut dec = FrameDecoder::new();
        let too_big = u32::try_from(MAX_FRAME_BYTES).unwrap() + 1;
        dec.feed(&too_big.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(DecodeError::BadLength(MAX_FRAME_BYTES + 1))
        );
    }

    #[test]
    fn frame_decoder_compacts_without_losing_bytes() {
        let frame = Frame::Sample {
            pid: 3,
            uops: 4,
            mem_trans: 5,
            tsc_delta: 6,
        };
        let bytes = encode(&frame);
        let mut dec = FrameDecoder::new();
        // Push far more than the compaction threshold through a small
        // decoder, splitting feeds at an awkward stride.
        let rounds = (2 * super::DECODER_COMPACT_BYTES) / bytes.len() + 8;
        let mut fed = Vec::new();
        for _ in 0..rounds {
            fed.extend_from_slice(&bytes);
        }
        let mut seen = 0usize;
        for chunk in fed.chunks(7) {
            dec.feed(chunk);
            while let Some(got) = dec.next_frame().unwrap() {
                assert_eq!(got, frame);
                seen += 1;
            }
        }
        assert_eq!(seen, rounds);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn timeout_classification() {
        let e = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        assert!(e.is_timeout());
        let e = FrameError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "t"));
        assert!(!e.is_timeout());
        let e = FrameError::Decode(DecodeError::Truncated);
        assert!(!e.is_timeout());
    }
}
