//! Property tests for the wire protocol: arbitrary frames round-trip
//! exactly, and no mutilation of the byte stream — truncation, padding,
//! oversized length prefixes, or plain byte soup — ever panics the
//! decoder. Total decoding is what lets a poisoned connection die alone
//! instead of taking the server with it.

use livephase_serve::wire::{
    decode_payload, encode, encode_payload, read_frame, DecodeError, ErrorCode, Frame,
    FrameDecoder, FrameError, StatsSnapshot, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use proptest::collection;
use proptest::prelude::*;

/// Protocol strings: printable ASCII, comfortably under the u16 length cap.
fn arb_string() -> impl Strategy<Value = String> {
    collection::vec(32u8..127, 0usize..32)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::VersionMismatch),
        Just(ErrorCode::Malformed),
        Just(ErrorCode::Busy),
        Just(ErrorCode::IdleTimeout),
        Just(ErrorCode::BadConfig),
        Just(ErrorCode::Protocol),
        Just(ErrorCode::ShuttingDown),
        Just(ErrorCode::SlowConsumer),
    ]
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (0u16..=u16::MAX, 0u64..=u64::MAX, arb_string(), arb_string()).prop_map(
            |(version, client_id, platform, predictor)| Frame::Hello {
                version,
                client_id,
                platform,
                predictor,
            }
        ),
        (0u16..=u16::MAX, 0u32..=u32::MAX, 0u8..=u8::MAX).prop_map(
            |(version, shard, op_points)| Frame::HelloAck {
                version,
                shard,
                op_points,
            }
        ),
        (
            0u32..=u32::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX
        )
            .prop_map(|(pid, uops, mem_trans, tsc_delta)| Frame::Sample {
                pid,
                uops,
                mem_trans,
                tsc_delta,
            }),
        (0u32..=u32::MAX, 0u8..=u8::MAX, 0u16..=u16::MAX).prop_map(
            |(pid, op_point, confidence)| Frame::Decision {
                pid,
                op_point,
                confidence,
            }
        ),
        Just(Frame::StatsRequest),
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u32..=u32::MAX,
        )
            .prop_map(
                |(samples, decisions, connections, active_connections, processes, shards)| {
                    Frame::Stats(StatsSnapshot {
                        samples,
                        decisions,
                        connections,
                        active_connections,
                        processes,
                        shards,
                    })
                }
            ),
        (arb_error_code(), arb_string()).prop_map(|(code, message)| Frame::Error { code, message }),
        Just(Frame::Goodbye),
        Just(Frame::MetricsRequest),
        arb_string().prop_map(|text| Frame::Metrics { text }),
    ]
    .boxed()
}

proptest! {
    /// Every frame survives encode → decode unchanged, both as a bare
    /// payload and through the length-prefixed stream reader.
    #[test]
    fn arbitrary_frames_round_trip(frame in arb_frame()) {
        let payload = encode_payload(&frame);
        prop_assert_eq!(decode_payload(&payload).as_ref(), Ok(&frame));
        let mut cursor = std::io::Cursor::new(encode(&frame));
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    /// Any strict prefix of a valid payload is rejected — with an error,
    /// never a panic. (Every field of every frame is mandatory, so a
    /// truncated body can never alias a shorter valid frame.)
    #[test]
    fn truncated_payloads_are_rejected(frame in arb_frame(), fraction in 0.0f64..1.0) {
        let payload = encode_payload(&frame);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = ((payload.len() as f64) * fraction) as usize;
        prop_assume!(cut < payload.len());
        prop_assert!(decode_payload(&payload[..cut]).is_err());
    }

    /// Trailing garbage after a complete frame is rejected: the protocol
    /// only grows through new tags and the version field, never through
    /// silently ignored suffix bytes.
    #[test]
    fn padded_payloads_are_rejected(frame in arb_frame(), pad in collection::vec(0u8..=u8::MAX, 1usize..16)) {
        let mut payload = encode_payload(&frame);
        let expect_trailing = DecodeError::TrailingBytes(pad.len());
        payload.extend_from_slice(&pad);
        prop_assert_eq!(decode_payload(&payload), Err(expect_trailing));
    }

    /// A length prefix beyond `MAX_FRAME_BYTES` is refused before any
    /// payload byte is read or allocated.
    #[test]
    fn oversized_length_prefixes_are_rejected(excess in 1u64..=u64::from(u32::MAX) - MAX_FRAME_BYTES as u64) {
        #[allow(clippy::cast_possible_truncation)]
        let len = (MAX_FRAME_BYTES as u64 + excess) as u32;
        let bytes = len.to_le_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(FrameError::Decode(DecodeError::BadLength(n))) => {
                prop_assert_eq!(n, len as usize);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    /// Arbitrary byte soup never panics the payload decoder.
    #[test]
    fn byte_soup_never_panics(bytes in collection::vec(0u8..=u8::MAX, 0usize..256)) {
        let _ = decode_payload(&bytes);
    }

    /// The version constant is what `Hello` round-trips today; a bump
    /// must be deliberate (and handled in the server's handshake).
    #[test]
    fn version_field_is_carried_verbatim(client_id in 0u64..=u64::MAX) {
        let frame = Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id,
            platform: "pentium_m".into(),
            predictor: "gpht:8:128".into(),
        };
        match decode_payload(&encode_payload(&frame)) {
            Ok(Frame::Hello { version, .. }) => prop_assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    /// The incremental decoder fed one byte at a time yields exactly the
    /// frames of the corpus, in order — resumable decoding is
    /// byte-identical to one-shot decoding however the stream fragments.
    #[test]
    fn incremental_decoder_matches_one_shot_byte_at_a_time(
        corpus in collection::vec(arb_frame(), 1usize..8),
    ) {
        let stream: Vec<u8> = corpus.iter().flat_map(encode).collect();
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for byte in &stream {
            decoder.feed(std::slice::from_ref(byte));
            while let Some(frame) = decoder.next_frame().expect("valid corpus") {
                // Every frame except one delivered whole in the very
                // first byte must have waited on at least one resume.
                prop_assert!(stream.len() == 1 || decoder.last_resumes() >= 1);
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, corpus);
        prop_assert_eq!(decoder.buffered(), 0, "nothing left buffered");
    }

    /// The same corpus chopped into arbitrary chunk sizes decodes to the
    /// same frames as feeding it whole.
    #[test]
    fn incremental_decoder_is_chunking_invariant(
        corpus in collection::vec(arb_frame(), 1usize..8),
        cuts in collection::vec(1usize..64, 0usize..32),
    ) {
        let stream: Vec<u8> = corpus.iter().flat_map(encode).collect();

        // One-shot: the whole stream in a single feed.
        let mut one_shot = FrameDecoder::new();
        one_shot.feed(&stream);
        let mut expected = Vec::new();
        while let Some(frame) = one_shot.next_frame().expect("valid corpus") {
            expected.push(frame);
        }
        prop_assert_eq!(expected.as_slice(), corpus.as_slice());

        // Chunked: cut points from the random cut list, remainder last.
        let mut chunked = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut rest = stream.as_slice();
        for cut in cuts {
            if rest.is_empty() {
                break;
            }
            let take = cut.min(rest.len());
            chunked.feed(&rest[..take]);
            rest = &rest[take..];
            while let Some(frame) = chunked.next_frame().expect("valid corpus") {
                decoded.push(frame);
            }
        }
        chunked.feed(rest);
        while let Some(frame) = chunked.next_frame().expect("valid corpus") {
            decoded.push(frame);
        }
        prop_assert_eq!(decoded, expected);
        prop_assert_eq!(chunked.buffered(), 0);
    }

    /// Incremental byte soup never panics the decoder: it either waits
    /// for more bytes or reports a typed error, and after the first
    /// error every subsequent call keeps failing (no livelock, no UB on
    /// a poisoned stream).
    #[test]
    fn incremental_byte_soup_never_panics(
        chunks in collection::vec(collection::vec(0u8..=u8::MAX, 0usize..64), 0usize..16),
    ) {
        let mut decoder = FrameDecoder::new();
        let mut errored = false;
        for chunk in &chunks {
            decoder.feed(chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => prop_assert!(!errored, "no frames after an error"),
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break;
                    }
                }
            }
        }
    }
}
