//! Property tests for the wire protocol: arbitrary frames round-trip
//! exactly, and no mutilation of the byte stream — truncation, padding,
//! oversized length prefixes, or plain byte soup — ever panics the
//! decoder. Total decoding is what lets a poisoned connection die alone
//! instead of taking the server with it.

use livephase_serve::wire::{
    decode_payload, encode, encode_payload, read_frame, DecodeError, ErrorCode, Frame, FrameError,
    StatsSnapshot, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use proptest::collection;
use proptest::prelude::*;

/// Protocol strings: printable ASCII, comfortably under the u16 length cap.
fn arb_string() -> impl Strategy<Value = String> {
    collection::vec(32u8..127, 0usize..32)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::VersionMismatch),
        Just(ErrorCode::Malformed),
        Just(ErrorCode::Busy),
        Just(ErrorCode::IdleTimeout),
        Just(ErrorCode::BadConfig),
        Just(ErrorCode::Protocol),
        Just(ErrorCode::ShuttingDown),
    ]
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (0u16..=u16::MAX, 0u64..=u64::MAX, arb_string(), arb_string()).prop_map(
            |(version, client_id, platform, predictor)| Frame::Hello {
                version,
                client_id,
                platform,
                predictor,
            }
        ),
        (0u16..=u16::MAX, 0u32..=u32::MAX, 0u8..=u8::MAX).prop_map(
            |(version, shard, op_points)| Frame::HelloAck {
                version,
                shard,
                op_points,
            }
        ),
        (
            0u32..=u32::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX
        )
            .prop_map(|(pid, uops, mem_trans, tsc_delta)| Frame::Sample {
                pid,
                uops,
                mem_trans,
                tsc_delta,
            }),
        (0u32..=u32::MAX, 0u8..=u8::MAX, 0u16..=u16::MAX).prop_map(
            |(pid, op_point, confidence)| Frame::Decision {
                pid,
                op_point,
                confidence,
            }
        ),
        Just(Frame::StatsRequest),
        (
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u32..=u32::MAX,
        )
            .prop_map(
                |(samples, decisions, connections, active_connections, processes, shards)| {
                    Frame::Stats(StatsSnapshot {
                        samples,
                        decisions,
                        connections,
                        active_connections,
                        processes,
                        shards,
                    })
                }
            ),
        (arb_error_code(), arb_string()).prop_map(|(code, message)| Frame::Error { code, message }),
        Just(Frame::Goodbye),
        Just(Frame::MetricsRequest),
        arb_string().prop_map(|text| Frame::Metrics { text }),
    ]
    .boxed()
}

proptest! {
    /// Every frame survives encode → decode unchanged, both as a bare
    /// payload and through the length-prefixed stream reader.
    #[test]
    fn arbitrary_frames_round_trip(frame in arb_frame()) {
        let payload = encode_payload(&frame);
        prop_assert_eq!(decode_payload(&payload).as_ref(), Ok(&frame));
        let mut cursor = std::io::Cursor::new(encode(&frame));
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), frame);
    }

    /// Any strict prefix of a valid payload is rejected — with an error,
    /// never a panic. (Every field of every frame is mandatory, so a
    /// truncated body can never alias a shorter valid frame.)
    #[test]
    fn truncated_payloads_are_rejected(frame in arb_frame(), fraction in 0.0f64..1.0) {
        let payload = encode_payload(&frame);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = ((payload.len() as f64) * fraction) as usize;
        prop_assume!(cut < payload.len());
        prop_assert!(decode_payload(&payload[..cut]).is_err());
    }

    /// Trailing garbage after a complete frame is rejected: the protocol
    /// only grows through new tags and the version field, never through
    /// silently ignored suffix bytes.
    #[test]
    fn padded_payloads_are_rejected(frame in arb_frame(), pad in collection::vec(0u8..=u8::MAX, 1usize..16)) {
        let mut payload = encode_payload(&frame);
        let expect_trailing = DecodeError::TrailingBytes(pad.len());
        payload.extend_from_slice(&pad);
        prop_assert_eq!(decode_payload(&payload), Err(expect_trailing));
    }

    /// A length prefix beyond `MAX_FRAME_BYTES` is refused before any
    /// payload byte is read or allocated.
    #[test]
    fn oversized_length_prefixes_are_rejected(excess in 1u64..=u64::from(u32::MAX) - MAX_FRAME_BYTES as u64) {
        #[allow(clippy::cast_possible_truncation)]
        let len = (MAX_FRAME_BYTES as u64 + excess) as u32;
        let bytes = len.to_le_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            Err(FrameError::Decode(DecodeError::BadLength(n))) => {
                prop_assert_eq!(n, len as usize);
            }
            other => panic!("expected BadLength, got {other:?}"),
        }
    }

    /// Arbitrary byte soup never panics the payload decoder.
    #[test]
    fn byte_soup_never_panics(bytes in collection::vec(0u8..=u8::MAX, 0usize..256)) {
        let _ = decode_payload(&bytes);
    }

    /// The version constant is what `Hello` round-trips today; a bump
    /// must be deliberate (and handled in the server's handshake).
    #[test]
    fn version_field_is_carried_verbatim(client_id in 0u64..=u64::MAX) {
        let frame = Frame::Hello {
            version: PROTOCOL_VERSION,
            client_id,
            platform: "pentium_m".into(),
            predictor: "gpht:8:128".into(),
        };
        match decode_payload(&encode_payload(&frame)) {
            Ok(Frame::Hello { version, .. }) => prop_assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
    }
}
