//! Reactor end-to-end tests: the many-connection load generator holding
//! every session open at once, slow-consumer shedding under an
//! outbound-queue cap, bit-exactness of served decisions against the
//! in-process session engine, and reap/drain accounting. (These used to
//! run the same scenarios through the removed thread-per-connection
//! blocking engine as an equivalence oracle; the in-process decision
//! path is the oracle now.)

use livephase_serve::client::Client;
use livephase_serve::engine::{EngineConfig, SessionState};
use livephase_serve::loadgen::{self, LoadGenConfig};
use livephase_serve::reactor;
use livephase_serve::server::{spawn, ServerConfig};
use livephase_serve::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use std::io::Write;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::Duration;

fn connect(handle: &livephase_serve::ServerHandle, client_id: u64) -> Client {
    Client::connect(
        handle.local_addr(),
        client_id,
        "pentium_m",
        "gpht:8:128",
        Duration::from_secs(5),
    )
    .expect("handshake")
}

/// The scaled acceptance bar, sized for CI: the many-connection load
/// generator opens 1200 sessions, holds them ALL open concurrently
/// (peak == requested), and every served stream is bit-exact against
/// the in-process manager.
#[test]
fn many_connection_mode_holds_all_sessions_and_stays_bit_exact() {
    let handle = spawn(ServerConfig {
        shards: 2,
        max_conns: 1500,
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind loopback");

    let report = loadgen::run(&LoadGenConfig {
        addr: handle.local_addr().to_string(),
        connections: 1200,
        benchmarks: vec!["applu_in".into(), "swim_in".into(), "crafty_in".into()],
        length: 12,
        window: 16,
        many_conn: true,
        timeout: Duration::from_secs(30),
        ..LoadGenConfig::default()
    })
    .expect("many-connection load generation succeeds");

    assert_eq!(
        report.peak_connections, 1200,
        "every session is held open before any stream starts"
    );
    assert_eq!(report.outcomes.len(), 1200, "one outcome per connection");
    assert!(report.all_exact(), "all 1200 streams bit-exact");
    assert_eq!(report.samples, 1200 * 12);

    let summary = handle.shutdown();
    assert_eq!(summary.accepted, 1200);
    assert_eq!(summary.poisoned, 0);
    assert_eq!(summary.decisions, 1200 * 12);
}

/// A connection that stops draining its decisions is shed with a typed
/// `Error{SlowConsumer}` once its outbound queue exceeds the configured
/// cap — and a well-behaved sibling on the same shard keeps streaming
/// bit-exact decisions throughout.
#[test]
fn slow_consumer_is_shed_without_disturbing_its_shard_siblings() {
    // One shard (so the flood and the sibling share an owner thread),
    // a small server send buffer and a small outbound cap so the
    // backpressure ladder trips quickly.
    let handle = spawn(ServerConfig {
        shards: 1,
        max_conns: 8,
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(5),
        max_outbound_bytes: 32 * 1024,
        sndbuf: Some(8 * 1024),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.local_addr().to_string();

    // The sibling replays a benchmark through the standard load
    // generator (with the oracle agreement check) while the flood runs.
    let sibling = std::thread::spawn(move || {
        loadgen::run(&LoadGenConfig {
            addr,
            connections: 1,
            benchmarks: vec!["applu_in".into()],
            length: 200,
            window: 8,
            timeout: Duration::from_secs(30),
            ..LoadGenConfig::default()
        })
    });

    // The slow consumer: handshake, shrink its receive window, then
    // flood samples without ever reading a decision.
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    reactor::set_recv_buffer(raw.as_raw_fd(), 8 * 1024).expect("shrink rcvbuf");
    raw.set_write_timeout(Some(Duration::from_millis(500)))
        .expect("write timeout");
    raw.write_all(&wire::encode(&Frame::Hello {
        version: PROTOCOL_VERSION,
        client_id: 666,
        platform: "pentium_m".into(),
        predictor: "gpht:8:128".into(),
    }))
    .expect("send hello");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    match wire::read_frame(&mut reader) {
        Ok(Frame::HelloAck { .. }) => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    let sample = wire::encode(&Frame::Sample {
        pid: 1,
        uops: 100_000_000,
        mem_trans: 1_200_000,
        tsc_delta: 0,
    });
    // Each sample earns a ~12-byte decision; tens of thousands overrun
    // the 16 KiB of socket buffer per side plus the 32 KiB cap. Writes
    // start failing once the server sheds us and closes; that is the
    // signal to stop flooding.
    for _ in 0..60_000 {
        if raw.write_all(&sample).is_err() {
            break;
        }
    }
    // Now drain: decisions the server flushed before the cap tripped,
    // then the typed shed error, then EOF.
    let mut shed = false;
    loop {
        match wire::read_frame(&mut reader) {
            Ok(Frame::Decision { .. }) => {}
            Ok(Frame::Error { code, message }) => {
                assert_eq!(code, ErrorCode::SlowConsumer, "typed shed error");
                assert!(
                    message.contains("shedding slow consumer"),
                    "actionable message: {message}"
                );
                shed = true;
            }
            Ok(other) => panic!("unexpected frame while draining: {other:?}"),
            Err(_) => break, // EOF after the terminal error
        }
    }
    assert!(shed, "the flood was shed with Error{{SlowConsumer}}");

    // The sibling finished its stream bit-exact despite sharing the shard.
    let report = sibling
        .join()
        .expect("sibling thread")
        .expect("sibling load generation succeeds");
    assert!(report.all_exact(), "sibling stayed bit-exact");
    assert_eq!(report.samples, 200);

    // The shed shows up in the telemetry and the poison count.
    let mut probe = connect(&handle, 2);
    let text = probe.metrics().expect("metrics scrape");
    assert!(
        text.lines().any(|l| {
            l.starts_with("serve_conns_shed_total")
                && l.rsplit(' ')
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .is_some_and(|v| v >= 1)
        }),
        "shed counter exported: {text}"
    );
    probe.goodbye().expect("close probe");
    let summary = handle.shutdown();
    assert!(summary.poisoned >= 1, "the shed connection was poisoned");
}

/// The in-process session engine is the reactor's equivalence oracle:
/// the same counter stream served over the wire yields the decision
/// stream `SessionState` computes directly — operating point and
/// confidence alike, bit for bit.
#[test]
fn reactor_decides_identically_to_the_in_process_engine() {
    use livephase_serve::Sample;
    use livephase_workloads::{counter_samples, spec};
    let samples: Vec<(u64, u64)> = counter_samples(
        spec::benchmark("applu_in")
            .expect("known benchmark")
            .with_length(120)
            .stream(42),
    )
    .map(|s| (s.uops, s.mem_transactions))
    .collect();

    // The oracle: the exact decision path the shards run, in process.
    let config = EngineConfig::pentium_m();
    let mut oracle = SessionState::new(&config, "gpht:8:128").expect("oracle session");
    let oracle_samples: Vec<Sample> = samples
        .iter()
        .map(|&(uops, mem)| Sample {
            pid: 1,
            uops,
            mem_transactions: mem,
        })
        .collect();
    let mut oracle_decisions = Vec::new();
    oracle.apply_batch(&oracle_samples, &mut oracle_decisions);
    let expected: Vec<(u8, u16)> = oracle_decisions
        .iter()
        .map(|d| (d.op_point, d.confidence))
        .collect();

    let handle = spawn(ServerConfig {
        shards: 2,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = connect(&handle, 7);
    for &(uops, mem) in &samples {
        client.queue_sample(1, uops, mem, 0).expect("queue");
    }
    client.flush().expect("flush");
    let served: Vec<(u8, u16)> = (0..samples.len())
        .map(|_| {
            let d = client.read_decision().expect("decision");
            (d.op_point, d.confidence)
        })
        .collect();
    client.goodbye().expect("close");
    let summary = handle.shutdown();
    assert_eq!(summary.decisions, samples.len() as u64);
    assert_eq!(summary.poisoned, 0);
    assert_eq!(
        served, expected,
        "the served stream is the in-process decision path, bit for bit"
    );
}

/// Idle reaping and graceful drain: an idle session earns
/// `Error{IdleTimeout}`, queued decisions survive a shutdown (flushed
/// before the close), and the poison accounting charges exactly the
/// reaped session.
#[test]
fn idle_reap_and_graceful_drain_account_exactly() {
    let handle = spawn(ServerConfig {
        shards: 2,
        read_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    })
    .expect("bind loopback");

    // An idle session is reaped with the typed timeout error.
    let mut idle = connect(&handle, 1);
    match idle.read() {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::IdleTimeout),
        other => panic!("expected Error{{IdleTimeout}}, got {other:?}"),
    }

    // A busy session's queued samples are all decided, and the
    // decisions are flushed to the client before the server closes
    // on shutdown.
    let mut busy = connect(&handle, 2);
    for i in 0..30 {
        busy.queue_sample(5, 100_000_000, i * 200_000, 0)
            .expect("queue");
    }
    busy.flush().expect("flush");
    // Wait until the server has computed all 30 decisions so the
    // shutdown drains delivery, not computation.
    let mut observer = connect(&handle, 3);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = observer.stats().expect("stats");
        if stats.decisions >= 30 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never ingested the 30 samples"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    observer.goodbye().expect("close observer");

    let summary = handle.shutdown();
    for _ in 0..30 {
        busy.read_decision().expect("drained decision");
    }
    match busy.read() {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Ok(other) => panic!("expected Error{{ShuttingDown}} or EOF, got {other:?}"),
        Err(_) => {} // EOF: the writer closed right after the drain
    }
    assert_eq!(
        (summary.decisions, summary.poisoned),
        (30, 1),
        "all 30 decisions drained; only the idle session was poisoned"
    );
}

/// The standard (threaded) load generator reports identical outcomes
/// across two independent reactor servers: same per-benchmark
/// agreement, same sample counts — serving is deterministic end to end.
#[test]
fn loadgen_reports_are_reproducible_across_servers() {
    let run_once = || {
        let handle = spawn(ServerConfig {
            shards: 2,
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let report = loadgen::run(&LoadGenConfig {
            addr: handle.local_addr().to_string(),
            connections: 3,
            benchmarks: vec!["applu_in".into(), "mcf_inp".into(), "swim_in".into()],
            length: 60,
            window: 16,
            ..LoadGenConfig::default()
        })
        .expect("load generation succeeds");
        handle.shutdown();
        report
    };
    let first = run_once();
    let second = run_once();
    assert!(first.all_exact() && second.all_exact());
    let digest = |r: &loadgen::LoadReport| -> Vec<(String, u64, bool)> {
        r.outcomes
            .iter()
            .map(|o| {
                (
                    o.name.clone(),
                    o.samples,
                    o.agreement.expect("checked").exact(),
                )
            })
            .collect()
    };
    assert_eq!(digest(&first), digest(&second));
}
