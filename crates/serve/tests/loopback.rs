//! End-to-end loopback tests: a real server on an ephemeral port, real
//! sockets, and the acceptance bar from the paper reproduction — served
//! decisions must be **bit-identical** to an in-process `Manager::run`
//! of the same counter stream. Also pins down the failure domains: a
//! malformed frame, protocol violation, version mismatch or idle timeout
//! poisons exactly one connection, never the server or another shard.

use livephase_serve::client::Client;
use livephase_serve::loadgen::{self, LoadGenConfig};
use livephase_serve::server::{spawn, ServerConfig};
use livephase_serve::wire::{self, ErrorCode, Frame, PROTOCOL_VERSION};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn test_server(read_timeout_ms: u64, max_conns: usize) -> livephase_serve::ServerHandle {
    spawn(ServerConfig {
        shards: 2,
        max_conns,
        read_timeout: Duration::from_millis(read_timeout_ms),
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn connect(handle: &livephase_serve::ServerHandle, client_id: u64) -> Client {
    Client::connect(
        handle.local_addr(),
        client_id,
        "pentium_m",
        "gpht:8:128",
        Duration::from_secs(5),
    )
    .expect("handshake")
}

/// The tentpole acceptance test: three benchmarks streamed through the
/// service agree bit-exactly with the in-process oracle, through the
/// same load-generator path `serve-bench` uses.
#[test]
fn served_decisions_are_bit_identical_to_manager_runs() {
    let handle = test_server(5_000, 64);
    let report = loadgen::run(&LoadGenConfig {
        addr: handle.local_addr().to_string(),
        connections: 3,
        benchmarks: vec!["applu_in".into(), "crafty_in".into(), "swim_in".into()],
        length: 80,
        window: 16,
        ..LoadGenConfig::default()
    })
    .expect("load generation succeeds");

    assert_eq!(report.outcomes.len(), 3);
    for outcome in &report.outcomes {
        let agreement = outcome.agreement.expect("agreement checked");
        assert!(
            agreement.exact(),
            "{}: {}/{} decisions matched",
            outcome.name,
            agreement.matched,
            agreement.compared
        );
        assert_eq!(outcome.samples, 80, "one decision per sample");
    }
    assert!(report.all_exact());
    assert_eq!(report.samples, 240);
    assert!(report.samples_per_s() > 0.0);

    let summary = handle.shutdown();
    assert_eq!(summary.accepted, 3);
    assert_eq!(summary.samples, 240);
    assert_eq!(summary.decisions, 240);
    assert_eq!(summary.poisoned, 0);
}

/// A `MetricsRequest` after traffic returns valid exposition text whose
/// shard and governor counters reflect the traffic served. (The metrics
/// registry is process-global and other tests share it, so counters are
/// asserted as lower bounds, never exact.)
#[test]
fn metrics_scrape_reflects_served_traffic() {
    let handle = test_server(5_000, 64);
    let mut client = connect(&handle, 99);
    assert_eq!(client.version(), PROTOCOL_VERSION, "v2 negotiated");
    const SAMPLES: u64 = 50;
    for _ in 0..SAMPLES {
        client.queue_sample(7, 100_000_000, 1_200_000, 0).unwrap();
    }
    client.flush().unwrap();
    for _ in 0..SAMPLES {
        client.read_decision().unwrap();
    }

    let text = client.metrics().expect("metrics scrape");
    client.goodbye().unwrap();
    handle.shutdown();

    let series = |name: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with(name) && !l.starts_with('#'))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse::<u64>().ok())
            .sum()
    };
    assert!(
        text.contains("# TYPE serve_connections_total counter"),
        "exposition headers present: {text}"
    );
    assert!(series("serve_connections_total") >= 1);
    // Our 50 samples landed on this client's shard; summed over shard
    // labels the ingest and decode counters must cover them.
    assert!(series("serve_shard_samples_total") >= SAMPLES);
    assert!(series("serve_frame_decode_us_count") >= SAMPLES);
    assert!(series("serve_shard_decision_us_count") >= SAMPLES);
    assert!(series("governor_decisions_total") >= SAMPLES);
    assert!(series("governor_decision_us_count") >= SAMPLES);
    assert!(
        text.lines()
            .any(|l| l.starts_with("serve_frame_decode_us_bucket{") && l.contains("le=")),
        "per-shard frame-latency histogram buckets present"
    );
}

/// A client that negotiated protocol v1 is served decisions as before,
/// but a v2-only `MetricsRequest` from it is a protocol violation.
#[test]
fn v1_sessions_are_served_but_cannot_scrape_metrics() {
    let handle = test_server(5_000, 64);
    // Hand-roll a v1 handshake: the Hello advertises version 1.
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    writer
        .write_all(&wire::encode(&Frame::Hello {
            version: 1,
            client_id: 5,
            platform: "pentium_m".into(),
            predictor: "gpht:8:128".into(),
        }))
        .unwrap();
    match wire::read_frame(&mut reader).unwrap() {
        Frame::HelloAck { version, .. } => assert_eq!(version, 1, "HelloAck echoes v1"),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    // Decisions still flow for a v1 session.
    writer
        .write_all(&wire::encode(&Frame::Sample {
            pid: 1,
            uops: 100_000_000,
            mem_trans: 0,
            tsc_delta: 0,
        }))
        .unwrap();
    assert!(matches!(
        wire::read_frame(&mut reader).unwrap(),
        Frame::Decision { pid: 1, .. }
    ));
    // But the v2-only scrape is refused as a protocol violation.
    writer
        .write_all(&wire::encode(&Frame::MetricsRequest))
        .unwrap();
    match wire::read_frame(&mut reader).unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected Error, got {other:?}"),
    }
    handle.shutdown();
}

/// v1 and v2 sessions run the same `DecisionEngine`: the same counter
/// stream through a hand-rolled v1 session and a library v2 client yields
/// bit-identical decisions, operating point and confidence alike.
#[test]
fn v1_and_v2_sessions_decide_identically() {
    use livephase_workloads::{counter_samples, spec};
    let handle = test_server(5_000, 64);

    let trace = spec::benchmark("applu_in")
        .unwrap()
        .with_length(60)
        .generate(42);
    let samples: Vec<(u64, u64)> = counter_samples(&trace)
        .map(|s| (s.uops, s.mem_transactions))
        .collect();

    // v2 session through the library client.
    let mut v2 = connect(&handle, 21);
    for &(uops, mem) in &samples {
        v2.queue_sample(1, uops, mem, 0).unwrap();
    }
    v2.flush().unwrap();
    let v2_decisions: Vec<(u8, u16)> = (0..samples.len())
        .map(|_| {
            let d = v2.read_decision().expect("v2 decision");
            (d.op_point, d.confidence)
        })
        .collect();
    v2.goodbye().unwrap();

    // v1 session, hand-rolled over the same stream.
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    writer
        .write_all(&wire::encode(&Frame::Hello {
            version: 1,
            client_id: 22,
            platform: "pentium_m".into(),
            predictor: "gpht:8:128".into(),
        }))
        .unwrap();
    match wire::read_frame(&mut reader).unwrap() {
        Frame::HelloAck { version, .. } => assert_eq!(version, 1),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    for &(uops, mem) in &samples {
        writer
            .write_all(&wire::encode(&Frame::Sample {
                pid: 1,
                uops,
                mem_trans: mem,
                tsc_delta: 0,
            }))
            .unwrap();
    }
    let v1_decisions: Vec<(u8, u16)> = (0..samples.len())
        .map(|_| match wire::read_frame(&mut reader).unwrap() {
            Frame::Decision {
                pid,
                op_point,
                confidence,
            } => {
                assert_eq!(pid, 1);
                (op_point, confidence)
            }
            other => panic!("expected Decision, got {other:?}"),
        })
        .collect();

    assert_eq!(
        v1_decisions, v2_decisions,
        "v1 and v2 sessions share one engine"
    );
    handle.shutdown();
}

/// A malformed frame earns `Error{Malformed}` and poisons only that
/// connection: a concurrent well-behaved session on the same server
/// keeps streaming decisions afterwards.
#[test]
fn malformed_frame_poisons_only_its_connection() {
    let handle = test_server(5_000, 64);

    // Victim connects first and stays connected throughout.
    let mut good = connect(&handle, 1);

    // Attacker handshakes, then writes an oversized length prefix.
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    raw.write_all(&wire::encode(&Frame::Hello {
        version: PROTOCOL_VERSION,
        client_id: 2,
        platform: "pentium_m".into(),
        predictor: "gpht:8:128".into(),
    }))
    .expect("send hello");
    let mut attacker = std::io::BufReader::new(raw.try_clone().expect("clone"));
    match wire::read_frame(&mut attacker) {
        Ok(Frame::HelloAck { .. }) => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    raw.write_all(&u32::MAX.to_le_bytes()).expect("bad prefix");
    raw.flush().expect("flush");
    match wire::read_frame(&mut attacker) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Error{{Malformed}}, got {other:?}"),
    }
    // The poisoned connection is closed after the terminal error.
    assert!(
        wire::read_frame(&mut attacker).is_err(),
        "closed after error"
    );

    // The well-behaved session still gets correct service.
    for i in 0..10 {
        good.queue_sample(7, 100_000_000, i * 400_000, 0)
            .expect("queue");
    }
    good.flush().expect("flush");
    for _ in 0..10 {
        let d = good.read_decision().expect("decision after attack");
        assert!(d.op_point < 6);
    }
    good.goodbye().expect("clean close");

    let summary = handle.shutdown();
    assert_eq!(summary.poisoned, 1, "only the attacker was poisoned");
    assert_eq!(summary.decisions, 10);
}

/// Version mismatch and bad predictor specs are refused with typed
/// errors at the handshake; the server keeps serving.
#[test]
fn handshake_refusals_are_typed() {
    let handle = test_server(5_000, 64);

    let err = Client::connect(
        handle.local_addr(),
        1,
        "pentium_m",
        "gpht:8:128",
        Duration::from_secs(5),
    );
    assert!(err.is_ok(), "control: a good handshake succeeds");

    // Wrong protocol version.
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    raw.write_all(&wire::encode(&Frame::Hello {
        version: PROTOCOL_VERSION + 1,
        client_id: 2,
        platform: "pentium_m".into(),
        predictor: "gpht:8:128".into(),
    }))
    .expect("send");
    let mut r = std::io::BufReader::new(raw);
    match wire::read_frame(&mut r) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected Error{{VersionMismatch}}, got {other:?}"),
    }

    // Unparseable predictor spec.
    match Client::connect(
        handle.local_addr(),
        3,
        "pentium_m",
        "gpht:0:0",
        Duration::from_secs(5),
    ) {
        Err(livephase_serve::ClientError::Refused { code, .. }) => {
            assert_eq!(code, ErrorCode::BadConfig);
        }
        other => panic!("expected Refused(BadConfig), got {other:?}"),
    }

    // Unknown platform.
    match Client::connect(
        handle.local_addr(),
        4,
        "core_duo",
        "gpht:8:128",
        Duration::from_secs(5),
    ) {
        Err(livephase_serve::ClientError::Refused { code, .. }) => {
            assert_eq!(code, ErrorCode::BadConfig);
        }
        other => panic!("expected Refused(BadConfig), got {other:?}"),
    }

    // A sample before any Hello is a protocol violation.
    let mut raw = TcpStream::connect(handle.local_addr()).expect("connect");
    raw.write_all(&wire::encode(&Frame::Sample {
        pid: 1,
        uops: 1,
        mem_trans: 0,
        tsc_delta: 0,
    }))
    .expect("send");
    let mut r = std::io::BufReader::new(raw);
    match wire::read_frame(&mut r) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected Error{{Protocol}}, got {other:?}"),
    }

    // Close the control connection so shutdown doesn't wait out its
    // read timeout.
    drop(err);
    let _ = handle.shutdown();
}

/// An idle connection is closed with `Error{IdleTimeout}` after the read
/// timeout, and the server survives to serve the next client.
#[test]
fn idle_connections_time_out_without_hurting_the_server() {
    let handle = test_server(100, 64);

    let mut idle = connect(&handle, 1);
    // Send nothing; the server should cut us off.
    match idle.read() {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::IdleTimeout),
        other => panic!("expected Error{{IdleTimeout}}, got {other:?}"),
    }

    // A fresh client is served normally afterwards.
    let mut fresh = connect(&handle, 2);
    fresh.queue_sample(1, 100_000_000, 0, 0).expect("queue");
    fresh.flush().expect("flush");
    let _ = fresh.read_decision().expect("decision");
    fresh.goodbye().expect("close");

    let summary = handle.shutdown();
    assert_eq!(summary.poisoned, 1);
    assert_eq!(summary.decisions, 1);
}

/// The `max_conns` accept gate refuses the surplus connection with
/// `Error{Busy}` and admits again once a slot frees.
#[test]
fn accept_gate_refuses_surplus_connections() {
    let handle = test_server(5_000, 1);

    let first = connect(&handle, 1);
    match Client::connect(
        handle.local_addr(),
        2,
        "pentium_m",
        "gpht:8:128",
        Duration::from_secs(5),
    ) {
        Err(livephase_serve::ClientError::Refused { code, .. }) => {
            assert_eq!(code, ErrorCode::Busy);
        }
        other => panic!("expected Refused(Busy), got {other:?}"),
    }
    first.goodbye().expect("free the slot");

    // The slot frees asynchronously; retry briefly.
    let mut admitted = false;
    for _ in 0..100 {
        if Client::connect(
            handle.local_addr(),
            3,
            "pentium_m",
            "gpht:8:128",
            Duration::from_secs(5),
        )
        .is_ok()
        {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(admitted, "slot reopens after the first client leaves");

    let summary = handle.shutdown();
    assert!(summary.rejected >= 1);
}

/// Flag-based shutdown drains in-flight work: samples the server has
/// accepted still get their decisions delivered, then the client sees
/// `ShuttingDown` (or a clean close).
#[test]
fn shutdown_drains_in_flight_decisions() {
    let handle = test_server(100, 64);
    let mut client = connect(&handle, 1);
    for i in 0..50 {
        client
            .queue_sample(9, 100_000_000, i * 100_000, 0)
            .expect("queue");
    }
    client.flush().expect("flush");

    // Wait (via a second connection's stats) until the server has
    // ingested all 50 samples, so the shutdown below races only the
    // delivery of the decisions, not their computation.
    let mut observer = connect(&handle, 2);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = observer.stats().expect("stats");
        if stats.decisions >= 50 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never ingested the 50 samples"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    observer.goodbye().expect("close observer");

    let summary = handle.shutdown();
    assert_eq!(summary.decisions, 50, "every in-flight sample was decided");

    // The client can still read every decision the server drained.
    for _ in 0..50 {
        client.read_decision().expect("drained decision");
    }
    // Terminal frame (ShuttingDown) or EOF, depending on timing.
    match client.read() {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Ok(other) => panic!("expected Error{{ShuttingDown}} or EOF, got {other:?}"),
        Err(_) => {} // EOF: the writer closed right after the drain
    }
}

/// Per-pid predictor state is kept per connection: two clients streaming
/// the same pid never share a GPHT (sessions are the isolation unit).
#[test]
fn sessions_are_isolated_across_connections() {
    let handle = test_server(5_000, 64);
    let mut a = connect(&handle, 10);
    let mut b = connect(&handle, 11);

    // a teaches pid 1 an alternation; b feeds pid 1 a constant phase.
    for _ in 0..40 {
        a.queue_sample(1, 100_000_000, 0, 0).expect("queue");
        a.queue_sample(1, 100_000_000, 4_000_000, 0).expect("queue");
        b.queue_sample(1, 100_000_000, 1_200_000, 0).expect("queue");
    }
    a.flush().expect("flush");
    b.flush().expect("flush");
    for _ in 0..80 {
        a.read_decision().expect("a decision");
    }
    let mut b_last = None;
    for _ in 0..40 {
        b_last = Some(b.read_decision().expect("b decision"));
    }
    // b's constant phase-3 stream decides setting 2 with high confidence,
    // unpolluted by a's alternating pid 1.
    let b_last = b_last.expect("b streamed");
    assert_eq!(b_last.op_point, 2);
    assert!(b_last.confidence > 9_000);

    let stats = a.stats().expect("stats");
    assert_eq!(stats.active_connections, 2);
    assert_eq!(stats.processes, 2, "one pid per session, two sessions");
    assert_eq!(stats.shards, 2);

    a.goodbye().expect("close a");
    b.goodbye().expect("close b");
    let _ = handle.shutdown();
}

/// `exit_after_conns` gives scripted runs a clean, joinable exit.
#[test]
fn exit_after_conns_terminates_the_server() {
    let handle = spawn(ServerConfig {
        shards: 2,
        read_timeout: Duration::from_millis(200),
        exit_after_conns: Some(2),
        ..ServerConfig::default()
    })
    .expect("bind");

    for id in 0..2 {
        let mut c = connect(&handle, id);
        c.queue_sample(1, 100_000_000, 0, 0).expect("queue");
        c.flush().expect("flush");
        let _ = c.read_decision().expect("decision");
        c.goodbye().expect("close");
    }
    // join (not shutdown): the quota must end the server by itself.
    let summary = handle.join();
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.decisions, 2);
}
