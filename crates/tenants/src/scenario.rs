//! Scenario specification: M tenant VMs on K cores under a watt budget.
//!
//! A [`ScenarioSpec`] pins everything the cluster runner needs so a run
//! is a pure function of the spec — same spec, same per-tenant decision
//! stream, bit for bit. Tenants are assigned benchmarks by cycling the
//! `mix`, get per-tenant derived seeds, and are pinned to core
//! `tenant % cores` for the whole run (no migration, which is what makes
//! the arbiter's per-core worst-case budget accounting airtight).

use crate::arbiter::ArbiterPolicy;
use livephase_pmsim::PowerModelKind;
use livephase_workloads::{benchmark, WorkloadTrace};
use std::fmt;

/// Default per-tenant, per-epoch scheduling credit in micro-ops: a
/// quarter of the 100 M-uop sampling interval, so one tenant interval
/// spans several context switches and the counter-virtualization path is
/// genuinely exercised.
pub const DEFAULT_QUANTUM_UOPS: u64 = 25_000_000;

/// The workload injected for noisy-neighbor tenants: the most
/// memory-bound benchmark of the paper's set, thrashing the Mem/Uop
/// spectrum its core neighbors are being classified on.
pub const NOISY_BENCHMARK: &str = "mcf_inp";

/// Scheduling-credit multiplier for noisy neighbors: they hog their core
/// for several quanta per epoch, stretching victims' wall-clock time.
pub const NOISY_WEIGHT: u64 = 4;

/// Seed-mixing constant (golden-ratio increment) for per-tenant seeds.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything a multi-tenant run is a function of.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Number of tenant VMs (M).
    pub tenants: usize,
    /// Number of simulated cores (K); tenant `t` is pinned to `t % K`.
    pub cores: usize,
    /// Cluster-wide power budget in watts.
    pub budget_w: f64,
    /// Per-tenant scheduling credit per epoch, in micro-ops.
    pub quantum_uops: u64,
    /// Trace length per tenant, in 100 M-uop sampling intervals.
    pub intervals: usize,
    /// Benchmark names cycled across tenants (`mix[t % mix.len()]`).
    pub mix: Vec<String>,
    /// Number of noisy-neighbor tenants (the highest tenant ids): they
    /// run [`NOISY_BENCHMARK`] with [`NOISY_WEIGHT`]× credit and the
    /// lowest arbitration priority.
    pub noisy: usize,
    /// Arbitration policy for the cluster power cap.
    pub policy: ArbiterPolicy,
    /// Per-tenant predictor specification (e.g. `gpht:8:128`).
    pub predictor: String,
    /// Power backend every tenant platform and the arbiter price from.
    /// The arbiter costs grants at the backend's `worst_case` bound, so
    /// the never-exceed-budget argument survives a model swap.
    pub power: PowerModelKind,
    /// Base seed; per-tenant seeds are derived deterministically.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A spec with the deployed defaults: GPHT predictor, water-filling
    /// arbitration, a 25 M-uop quantum, 40 intervals per tenant, and the
    /// paper's six variable benchmarks as the mix.
    #[must_use]
    pub fn new(tenants: usize, cores: usize) -> Self {
        Self {
            tenants,
            cores,
            budget_w: 60.0,
            quantum_uops: DEFAULT_QUANTUM_UOPS,
            intervals: 40,
            mix: livephase_workloads::spec::variable_six()
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            noisy: 0,
            policy: ArbiterPolicy::WaterFill,
            predictor: "gpht:8:128".to_owned(),
            power: PowerModelKind::default(),
            seed: 42,
        }
    }

    /// Checks the spec is runnable: positive dimensions, a finite
    /// positive budget, and every named benchmark registered.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.tenants == 0 {
            return Err(ScenarioError::Invalid("tenants must be >= 1".to_owned()));
        }
        if self.cores == 0 {
            return Err(ScenarioError::Invalid("cores must be >= 1".to_owned()));
        }
        if !(self.budget_w.is_finite() && self.budget_w > 0.0) {
            return Err(ScenarioError::Invalid(
                "budget must be finite and positive".to_owned(),
            ));
        }
        if self.quantum_uops == 0 {
            return Err(ScenarioError::Invalid(
                "quantum must be >= 1 uop".to_owned(),
            ));
        }
        if self.intervals == 0 {
            return Err(ScenarioError::Invalid("intervals must be >= 1".to_owned()));
        }
        if self.mix.is_empty() {
            return Err(ScenarioError::Invalid(
                "mix must name at least one benchmark".to_owned(),
            ));
        }
        if self.noisy > self.tenants {
            return Err(ScenarioError::Invalid(
                "noisy tenants cannot exceed the tenant count".to_owned(),
            ));
        }
        for name in &self.mix {
            if benchmark(name).is_none() {
                return Err(ScenarioError::UnknownBenchmark(name.clone()));
            }
        }
        if self.noisy > 0 && benchmark(NOISY_BENCHMARK).is_none() {
            return Err(ScenarioError::UnknownBenchmark(NOISY_BENCHMARK.to_owned()));
        }
        Ok(())
    }

    /// Whether tenant `t` is a noisy neighbor (the highest tenant ids).
    #[must_use]
    pub fn is_noisy(&self, tenant: u32) -> bool {
        self.noisy > 0 && (tenant as usize) >= self.tenants.saturating_sub(self.noisy)
    }

    /// The core tenant `t` is pinned to.
    #[must_use]
    pub fn core_of(&self, tenant: u32) -> usize {
        (tenant as usize) % self.cores.max(1)
    }

    /// The scheduling-credit weight of tenant `t`.
    #[must_use]
    pub fn tenant_weight(&self, tenant: u32) -> u64 {
        if self.is_noisy(tenant) {
            NOISY_WEIGHT
        } else {
            1
        }
    }

    /// The benchmark name tenant `t` runs.
    #[must_use]
    pub fn tenant_benchmark(&self, tenant: u32) -> String {
        if self.is_noisy(tenant) {
            return NOISY_BENCHMARK.to_owned();
        }
        let len = self.mix.len().max(1);
        self.mix
            .get((tenant as usize) % len)
            .cloned()
            .unwrap_or_else(|| NOISY_BENCHMARK.to_owned())
    }

    /// The derived per-tenant seed: a golden-ratio mix of the base seed
    /// and the tenant id, so tenants sharing a benchmark still walk
    /// distinct traces.
    #[must_use]
    pub fn tenant_seed(&self, tenant: u32) -> u64 {
        self.seed ^ GOLDEN.wrapping_mul(u64::from(tenant) + 1)
    }

    /// Materializes tenant `t`'s workload trace.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownBenchmark`] if the assigned
    /// benchmark is not registered.
    pub fn tenant_trace(&self, tenant: u32) -> Result<WorkloadTrace, ScenarioError> {
        let name = self.tenant_benchmark(tenant);
        let spec = benchmark(&name).ok_or(ScenarioError::UnknownBenchmark(name))?;
        Ok(spec
            .with_length(self.intervals)
            .generate(self.tenant_seed(tenant)))
    }

    /// The solo-oracle spec for tenant `t`: the same workload (identical
    /// trace, bit for bit) alone on one core under an unconstraining
    /// budget. Multiplexed counter virtualization is exact iff tenant
    /// `t`'s sample stream in the cluster run equals tenant 0's stream
    /// in this spec's run.
    #[must_use]
    pub fn solo(&self, tenant: u32) -> ScenarioSpec {
        let mut solo = self.clone();
        solo.tenants = 1;
        solo.cores = 1;
        solo.budget_w = 1e9;
        solo.mix = vec![self.tenant_benchmark(tenant)];
        solo.noisy = 0;
        // Invert the derivation so solo tenant 0's seed equals tenant
        // `t`'s seed here: derive(solo.seed, 0) == derive(self.seed, t).
        solo.seed = self.tenant_seed(tenant) ^ GOLDEN;
        solo
    }
}

/// Why a scenario cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A benchmark name is not in the workload registry.
    UnknownBenchmark(String),
    /// The predictor specification failed to parse.
    BadPredictor(String),
    /// A structural constraint was violated.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownBenchmark(name) => write!(f, "unknown benchmark '{name}'"),
            Self::BadPredictor(msg) => write!(f, "bad predictor spec: {msg}"),
            Self::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ScenarioSpec::new(8, 2).validate().unwrap();
    }

    #[test]
    fn structural_violations_are_caught() {
        assert!(ScenarioSpec::new(0, 2).validate().is_err());
        assert!(ScenarioSpec::new(2, 0).validate().is_err());
        let mut s = ScenarioSpec::new(2, 2);
        s.budget_w = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = ScenarioSpec::new(2, 2);
        s.mix = vec!["no_such_benchmark".to_owned()];
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::UnknownBenchmark(_))
        ));
        let mut s = ScenarioSpec::new(2, 2);
        s.noisy = 3;
        assert!(s.validate().is_err());
    }

    #[test]
    fn noisy_tenants_are_the_highest_ids() {
        let mut s = ScenarioSpec::new(6, 2);
        s.noisy = 2;
        assert!(!s.is_noisy(0));
        assert!(!s.is_noisy(3));
        assert!(s.is_noisy(4));
        assert!(s.is_noisy(5));
        assert_eq!(s.tenant_benchmark(5), NOISY_BENCHMARK);
        assert_eq!(s.tenant_weight(5), NOISY_WEIGHT);
        assert_eq!(s.tenant_weight(0), 1);
    }

    #[test]
    fn pinning_and_seeds_are_deterministic() {
        let s = ScenarioSpec::new(5, 2);
        assert_eq!(s.core_of(0), 0);
        assert_eq!(s.core_of(3), 1);
        assert_ne!(s.tenant_seed(0), s.tenant_seed(1));
        assert_eq!(s.tenant_seed(2), s.tenant_seed(2));
    }

    #[test]
    fn solo_reproduces_the_tenant_trace() {
        let mut s = ScenarioSpec::new(6, 2);
        s.noisy = 1;
        for t in 0..6 {
            let solo = s.solo(t);
            assert_eq!(solo.tenants, 1);
            assert_eq!(solo.cores, 1);
            let a = s.tenant_trace(t).unwrap();
            let b = solo.tenant_trace(0).unwrap();
            assert_eq!(a.intervals(), b.intervals(), "tenant {t}");
        }
    }
}
