//! Per-tenant and cluster-level run reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// FNV-1a offset basis: the seed every digest starts from.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into an FNV-1a digest — the deterministic fingerprint
/// used for per-tenant sample and decision streams.
#[must_use]
pub fn fnv1a(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(0x0100_0000_01b3);
    }
    digest
}

/// One tenant's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id (0-based).
    pub tenant: u32,
    /// Benchmark the tenant ran.
    pub benchmark: String,
    /// Whether the tenant was a noisy neighbor.
    pub noisy: bool,
    /// Core the tenant was pinned to.
    pub core: usize,
    /// Sampling intervals completed (PMIs plus a possible partial tail).
    pub intervals: u64,
    /// Simulated seconds the tenant itself executed (its own slices
    /// only; time spent descheduled does not count).
    pub time_s: f64,
    /// Joules the tenant's execution consumed.
    pub energy_j: f64,
    /// Predictions scored for this tenant.
    pub scored: u64,
    /// Scored predictions that were correct.
    pub correct: u64,
    /// Epochs in which the arbiter granted slower than requested.
    pub denied_epochs: u64,
    /// FNV-1a digest over the tenant's decision stream
    /// (phase, predicted, op-point, confidence per interval).
    pub decision_digest: u64,
    /// FNV-1a digest over the tenant's counter-sample stream
    /// (uops, mem-transactions per interval) — the bit-exactness witness
    /// for counter virtualization.
    pub sample_digest: u64,
}

impl TenantReport {
    /// Energy-delay product of the tenant's own execution, in J·s.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Prediction accuracy in `[0, 1]`; `1.0` when nothing was scored.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.scored == 0 {
            1.0
        } else {
            self.correct as f64 / self.scored as f64
        }
    }
}

/// The whole cluster run's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Per-tenant outcomes, tenant id order.
    pub tenants: Vec<TenantReport>,
    /// Cores simulated.
    pub cores: usize,
    /// The configured watt budget.
    pub budget_w: f64,
    /// The arbitration policy name.
    pub policy: String,
    /// Scheduling epochs executed.
    pub epochs: u64,
    /// vCPU context switches performed.
    pub context_switches: u64,
    /// Simulated seconds during which measured cluster power exceeded
    /// the budget (the headline cap guarantee: expected 0).
    pub cap_violation_s: f64,
    /// Highest measured per-epoch cluster power, watts.
    pub peak_epoch_power_w: f64,
    /// Whether even the all-slowest grant vector fit the budget; when
    /// false the cap cannot be guaranteed by DVFS alone.
    pub budget_feasible: bool,
    /// The longest per-core simulated clock, seconds.
    pub total_time_s: f64,
}

impl ClusterReport {
    /// One digest over every tenant's decision stream, tenant id order —
    /// what the determinism gate compares across runs.
    #[must_use]
    pub fn decision_digest(&self) -> u64 {
        let mut d = DIGEST_SEED;
        for t in &self.tenants {
            d = fnv1a(d, &t.tenant.to_le_bytes());
            d = fnv1a(d, &t.decision_digest.to_le_bytes());
            d = fnv1a(d, &t.sample_digest.to_le_bytes());
        }
        d
    }

    /// Total epochs in which some tenant was denied, summed per tenant.
    #[must_use]
    pub fn denied_epochs(&self) -> u64 {
        self.tenants.iter().map(|t| t.denied_epochs).sum()
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tenants cluster: M={} K={} budget={:.1} W policy={}",
            self.tenants.len(),
            self.cores,
            self.budget_w,
            self.policy
        )?;
        writeln!(
            f,
            "epochs {}  switches {}  peak {:.2} W  cap-violation {:.6} s  floor-feasible {}",
            self.epochs,
            self.context_switches,
            self.peak_epoch_power_w,
            self.cap_violation_s,
            if self.budget_feasible { "yes" } else { "no" }
        )?;
        writeln!(
            f,
            "{:>6}  {:<16} {:>4} {:>9} {:>10} {:>11} {:>12} {:>6} {:>7}  digest",
            "tenant",
            "benchmark",
            "core",
            "intervals",
            "time(s)",
            "energy(J)",
            "EDP(J*s)",
            "acc%",
            "denied"
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{:>6}  {:<16} {:>4} {:>9} {:>10.4} {:>11.3} {:>12.4} {:>6.1} {:>7}  {:016x}{}",
                t.tenant,
                t.benchmark,
                t.core,
                t.intervals,
                t.time_s,
                t.energy_j,
                t.edp(),
                t.accuracy() * 100.0,
                t.denied_epochs,
                t.decision_digest,
                if t.noisy { "  (noisy)" } else { "" }
            )?;
        }
        write!(f, "cluster decision digest {:016x}", self.decision_digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_deterministic() {
        let a = fnv1a(DIGEST_SEED, &[1, 2, 3]);
        let b = fnv1a(DIGEST_SEED, &[3, 2, 1]);
        assert_ne!(a, b);
        assert_eq!(a, fnv1a(DIGEST_SEED, &[1, 2, 3]));
    }

    #[test]
    fn empty_accuracy_is_perfect() {
        let t = TenantReport {
            tenant: 0,
            benchmark: "x".into(),
            noisy: false,
            core: 0,
            intervals: 0,
            time_s: 2.0,
            energy_j: 3.0,
            scored: 0,
            correct: 0,
            denied_epochs: 0,
            decision_digest: 0,
            sample_digest: 0,
        };
        assert_eq!(t.accuracy(), 1.0);
        assert_eq!(t.edp(), 6.0);
    }
}
