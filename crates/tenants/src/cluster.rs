//! The cluster runner: a deterministic round-robin credit scheduler
//! multiplexing M tenant vCPUs onto K simulated cores.
//!
//! Execution proceeds in *epochs*. Each epoch the arbiter converts the
//! tenants' standing DVFS requests into per-tenant grants under the watt
//! budget, then every core runs each of its resident tenants for one
//! credit quantum (`quantum_uops × weight` micro-ops). A context switch
//! is a [`VcpuContext`] save/restore, so each tenant's PMC/TSC deltas —
//! and therefore its Mem/Uop stream, phase classifications, and
//! decisions — are bit-for-bit identical to a solo run of the same trace
//! no matter how the cluster slices it.
//!
//! Tenants are pinned to core `tenant % K` and a core runs one tenant at
//! a time, so the arbiter's per-core worst-case accounting (see
//! [`crate::arbiter`]) upper-bounds what the cluster can actually draw;
//! the runner measures per-epoch power from the simulator's own
//! energy/time deltas and reports any time spent above the budget
//! (expected: none).

use crate::arbiter::{Arbiter, Grant, Request};
use crate::report::{fnv1a, ClusterReport, TenantReport, DIGEST_SEED};
use crate::scenario::{ScenarioError, ScenarioSpec};
use livephase_engine::{DecisionEngine, EngineConfig, Sample};
use livephase_pmsim::{Cpu, IntervalWork, PlatformConfig, PmiRecord, VcpuContext};
use livephase_telemetry::{Counter, Gauge};
use std::sync::Arc;

/// Tolerance on the measured-power budget comparison: measurement is a
/// ratio of accumulated f64 sums, so give it a whisker of slack.
const BUDGET_EPS_W: f64 = 1e-6;

/// Cluster-level telemetry handles, resolved once per run.
#[derive(Debug)]
struct ClusterMetrics {
    switches_total: Arc<Counter>,
    switch_rate: Arc<Gauge>,
}

impl ClusterMetrics {
    fn new() -> Self {
        let reg = livephase_telemetry::global();
        Self {
            switches_total: reg.counter(
                "tenants_context_switches_total",
                "vCPU context switches performed by the tenant scheduler.",
                &[],
            ),
            switch_rate: reg.gauge(
                "tenants_switch_rate",
                "Context switches per simulated core-second, last completed run.",
                &[],
            ),
        }
    }
}

/// One tenant's live scheduling state.
struct TenantRun {
    id: u32,
    benchmark: String,
    noisy: bool,
    weight: u64,
    core: usize,
    ctx: VcpuContext,
    work: Vec<IntervalWork>,
    cursor: usize,
    carry: Option<IntervalWork>,
    /// Operating point the tenant's latest decision requested.
    requested_op: usize,
    /// This epoch's arbiter grant (a floor on the op index).
    grant: usize,
    /// Whether this epoch's grant was slower than requested.
    denied_now: bool,
    time_s: f64,
    energy_j: f64,
    intervals: u64,
    denied_epochs: u64,
    /// Own-execution seconds accrued during the current denial streak.
    streak_s: f64,
    decision_digest: u64,
    sample_digest: u64,
    intervals_total: Arc<Counter>,
}

impl TenantRun {
    fn has_work(&self) -> bool {
        self.carry.is_some() || self.cursor < self.work.len()
    }

    /// Takes the next work chunk, capped at `credit` micro-ops; the
    /// remainder of a split chunk is carried to the tenant's next
    /// quantum.
    fn take_chunk(&mut self, credit: u64) -> Option<IntervalWork> {
        if credit == 0 {
            return None;
        }
        let chunk = match self.carry.take() {
            Some(c) => c,
            None => {
                let c = self.work.get(self.cursor).copied()?;
                self.cursor += 1;
                c
            }
        };
        if chunk.uops > credit {
            // `credit >= 1` and `credit < chunk.uops`, so the split
            // preconditions hold.
            let (first, rest) = chunk.split_at_uops(credit);
            self.carry = rest;
            Some(first)
        } else {
            Some(chunk)
        }
    }
}

/// Sets the core's operating point; indices are always valid here
/// (decision op-points and arbiter grants are both platform-table
/// indices), so a rejection is a construction-time impossibility.
fn apply_op(cpu: &mut Cpu<'_>, op: usize) {
    if cpu.set_dvfs(op).is_err() {
        unreachable!("operating point indices come from the validated platform table");
    }
}

/// Handles one PMI for the loaded tenant: digest the sample, step the
/// shared engine under the tenant's pid, digest the decision, and apply
/// the decided operating point clamped by this epoch's grant.
fn step_decision(
    engine: &mut DecisionEngine,
    cpu: &mut Cpu<'_>,
    tenant: &mut TenantRun,
    record: &PmiRecord,
) {
    let uops = record.metrics.uops_retired;
    if uops == 0 {
        return;
    }
    let mem = record.metrics.mem_transactions;
    tenant.sample_digest = fnv1a(tenant.sample_digest, &uops.to_le_bytes());
    tenant.sample_digest = fnv1a(tenant.sample_digest, &mem.to_le_bytes());
    let decision = engine.step(&Sample {
        pid: tenant.id,
        uops,
        mem_transactions: mem,
    });
    tenant.decision_digest = fnv1a(
        tenant.decision_digest,
        &[
            decision.phase.get(),
            decision.predicted.get(),
            decision.op_point,
        ],
    );
    tenant.decision_digest = fnv1a(tenant.decision_digest, &decision.confidence.to_le_bytes());
    tenant.intervals += 1;
    tenant.intervals_total.inc();
    tenant.requested_op = usize::from(decision.op_point);
    apply_op(cpu, tenant.requested_op.max(tenant.grant));
}

/// Runs a scenario to completion and reports per-tenant and cluster
/// outcomes. Pure: the report is a deterministic function of the spec.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the spec fails validation or names
/// an unknown benchmark or predictor.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ClusterReport, ScenarioError> {
    spec.validate()?;
    let platform = PlatformConfig {
        power: spec.power.clone(),
        ..PlatformConfig::pentium_m()
    };
    let mut engine = DecisionEngine::from_spec(EngineConfig::pentium_m(), &spec.predictor)
        .map_err(|e| ScenarioError::BadPredictor(e.to_string()))?;
    let mut arbiter = Arbiter::new(&platform, spec.budget_w, spec.policy, spec.cores);
    let metrics = ClusterMetrics::new();
    let registry = livephase_telemetry::global();

    let mut tenants = Vec::with_capacity(spec.tenants);
    for id in 0..u32::try_from(spec.tenants).unwrap_or(u32::MAX) {
        let trace = spec.tenant_trace(id)?;
        let (benchmark, work) = trace.into_parts();
        let tenant_label = id.to_string();
        tenants.push(TenantRun {
            id,
            benchmark,
            noisy: spec.is_noisy(id),
            weight: spec.tenant_weight(id),
            core: spec.core_of(id),
            ctx: VcpuContext::new(platform.pmi_granularity_uops),
            work,
            cursor: 0,
            carry: None,
            requested_op: 0,
            grant: 0,
            denied_now: false,
            time_s: 0.0,
            energy_j: 0.0,
            intervals: 0,
            denied_epochs: 0,
            streak_s: 0.0,
            decision_digest: DIGEST_SEED,
            sample_digest: DIGEST_SEED,
            intervals_total: registry.counter(
                "tenants_intervals_total",
                "Sampling intervals completed, per tenant.",
                &[("tenant", &tenant_label)],
            ),
        });
    }

    let mut core_members: Vec<Vec<usize>> = vec![Vec::new(); spec.cores];
    for (i, tenant) in tenants.iter().enumerate() {
        if let Some(members) = core_members.get_mut(tenant.core) {
            members.push(i);
        }
    }
    let mut cpus: Vec<Cpu<'_>> = (0..spec.cores).map(|_| Cpu::new(&platform)).collect();
    let mut loaded: Vec<Option<u32>> = vec![None; spec.cores];

    let mut epochs = 0u64;
    let mut switches = 0u64;
    let mut cap_violation_s = 0.0f64;
    let mut peak_epoch_power_w = 0.0f64;
    let mut budget_feasible = true;

    while tenants.iter().any(TenantRun::has_work) {
        // 1. Collect requests from live tenants and arbitrate.
        let mut requests = Vec::new();
        let mut request_owner = Vec::new();
        for (i, tenant) in tenants.iter().enumerate() {
            if !tenant.has_work() {
                continue;
            }
            requests.push(Request {
                tenant: tenant.id,
                core: tenant.core,
                requested_op: tenant.requested_op,
                priority: if tenant.noisy { 0 } else { 1 },
            });
            request_owner.push(i);
        }
        if epochs == 0 {
            budget_feasible = arbiter.floor_feasible(&requests);
        }
        let grants: Vec<Grant> = arbiter.arbitrate(&requests);
        for (k, grant) in grants.iter().enumerate() {
            let Some(&owner) = request_owner.get(k) else {
                continue;
            };
            if let Some(tenant) = tenants.get_mut(owner) {
                tenant.grant = grant.op;
                tenant.denied_now = grant.denied;
            }
        }

        // 2. Schedule: every core runs its residents for one quantum.
        let epoch_marks: Vec<_> = cpus.iter().map(Cpu::totals).collect();
        for (core_idx, members) in core_members.iter().enumerate() {
            let Some(cpu) = cpus.get_mut(core_idx) else {
                continue;
            };
            for &i in members {
                let Some(tenant) = tenants.get_mut(i) else {
                    continue;
                };
                if !tenant.has_work() {
                    continue;
                }
                let previous = loaded.get(core_idx).copied().flatten();
                if previous != Some(tenant.id) {
                    switches += 1;
                    metrics.switches_total.inc();
                    if let Some(slot) = loaded.get_mut(core_idx) {
                        *slot = Some(tenant.id);
                    }
                }
                cpu.load_vcpu(&tenant.ctx);
                let quantum_start = cpu.totals();
                // The incoming tenant pays for any DVFS transition its
                // effective operating point requires.
                apply_op(cpu, tenant.requested_op.max(tenant.grant));
                let mut credit = spec.quantum_uops.saturating_mul(tenant.weight).max(1);
                while credit > 0 && tenant.has_work() {
                    let Some(chunk) = tenant.take_chunk(credit) else {
                        break;
                    };
                    credit = credit.saturating_sub(chunk.uops);
                    cpu.push_work(chunk);
                    while let Some(record) = cpu.run_to_pmi() {
                        step_decision(&mut engine, cpu, tenant, &record);
                    }
                }
                if !tenant.has_work() {
                    // Off-grid tail of the tenant's trace, if any.
                    if let Some(record) = cpu.flush_partial_interval() {
                        step_decision(&mut engine, cpu, tenant, &record);
                    }
                }
                let quantum_end = cpu.totals();
                let dt = quantum_end.time_s - quantum_start.time_s;
                tenant.time_s += dt;
                tenant.energy_j += quantum_end.energy_j - quantum_start.energy_j;
                if tenant.denied_now {
                    tenant.denied_epochs += 1;
                    tenant.streak_s += dt;
                } else if tenant.streak_s > 0.0 {
                    arbiter.record_starvation(tenant.streak_s);
                    tenant.streak_s = 0.0;
                }
                cpu.store_vcpu(&mut tenant.ctx);
            }
        }
        epochs += 1;

        // 3. Measure the epoch's cluster power against the budget.
        let mut cluster_w = 0.0f64;
        let mut epoch_duration_s = 0.0f64;
        for (cpu, mark) in cpus.iter().zip(&epoch_marks) {
            let now = cpu.totals();
            let dt = now.time_s - mark.time_s;
            if dt > 0.0 {
                cluster_w += (now.energy_j - mark.energy_j) / dt;
                epoch_duration_s = epoch_duration_s.max(dt);
            }
        }
        peak_epoch_power_w = peak_epoch_power_w.max(cluster_w);
        if cluster_w > spec.budget_w + BUDGET_EPS_W {
            cap_violation_s += epoch_duration_s;
        }
    }

    // Close out any denial streak still open at run end.
    for tenant in &mut tenants {
        if tenant.streak_s > 0.0 {
            arbiter.record_starvation(tenant.streak_s);
            tenant.streak_s = 0.0;
        }
    }
    let core_seconds: f64 = cpus.iter().map(|c| c.totals().time_s).sum();
    if core_seconds > 0.0 {
        metrics
            .switch_rate
            .set((switches as f64 / core_seconds) as i64);
    }
    let total_time_s = cpus
        .iter()
        .map(|c| c.totals().time_s)
        .fold(0.0f64, f64::max);
    engine.flush_metrics();

    let reports = tenants
        .iter()
        .map(|tenant| {
            let stats = engine.pid_stats(tenant.id).unwrap_or_default();
            TenantReport {
                tenant: tenant.id,
                benchmark: tenant.benchmark.clone(),
                noisy: tenant.noisy,
                core: tenant.core,
                intervals: tenant.intervals,
                time_s: tenant.time_s,
                energy_j: tenant.energy_j,
                scored: stats.total,
                correct: stats.correct,
                denied_epochs: tenant.denied_epochs,
                decision_digest: tenant.decision_digest,
                sample_digest: tenant.sample_digest,
            }
        })
        .collect();
    Ok(ClusterReport {
        tenants: reports,
        cores: spec.cores,
        budget_w: spec.budget_w,
        policy: spec.policy.to_string(),
        epochs,
        context_switches: switches,
        cap_violation_s,
        peak_epoch_power_w,
        budget_feasible,
        total_time_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;

    #[test]
    fn a_small_cluster_runs_to_completion() {
        let mut spec = ScenarioSpec::new(4, 2);
        spec.intervals = 6;
        let report = run_scenario(&spec).unwrap();
        assert_eq!(report.tenants.len(), 4);
        assert!(report.epochs > 0);
        assert!(
            report.context_switches >= 4,
            "every tenant loaded at least once"
        );
        for t in &report.tenants {
            assert_eq!(t.intervals, 6, "tenant {} completed its trace", t.tenant);
            assert!(t.time_s > 0.0);
            assert!(t.energy_j > 0.0);
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = ScenarioSpec::new(0, 2);
        assert!(run_scenario(&spec).is_err());
        spec = ScenarioSpec::new(2, 1);
        spec.predictor = "frobnicate".to_owned();
        assert!(matches!(
            run_scenario(&spec),
            Err(ScenarioError::BadPredictor(_))
        ));
    }

    #[test]
    fn take_chunk_preserves_uop_totals() {
        let work = vec![
            IntervalWork::new(1_000_000, 800_000, 10_000, 0.7, 3.0),
            IntervalWork::new(500_000, 400_000, 20_000, 0.7, 3.0),
        ];
        let mut t = TenantRun {
            id: 0,
            benchmark: "x".into(),
            noisy: false,
            weight: 1,
            core: 0,
            ctx: VcpuContext::new(1_000_000),
            work,
            cursor: 0,
            carry: None,
            requested_op: 0,
            grant: 0,
            denied_now: false,
            time_s: 0.0,
            energy_j: 0.0,
            intervals: 0,
            denied_epochs: 0,
            streak_s: 0.0,
            decision_digest: DIGEST_SEED,
            sample_digest: DIGEST_SEED,
            intervals_total: livephase_telemetry::global().counter(
                "tenants_intervals_total",
                "Sampling intervals completed, per tenant.",
                &[("tenant", "test")],
            ),
        };
        let mut uops = 0u64;
        let mut mem = 0u64;
        while let Some(chunk) = t.take_chunk(300_000) {
            assert!(chunk.uops <= 300_000);
            uops += chunk.uops;
            mem += chunk.mem_transactions;
        }
        assert_eq!(uops, 1_500_000, "splitting loses no uops");
        assert_eq!(mem, 30_000, "splitting loses no mem transactions");
        assert!(!t.has_work());
        assert!(t.take_chunk(0).is_none());
    }
}
