//! The cluster power-cap arbiter.
//!
//! Once per scheduling epoch the arbiter collects one DVFS request per
//! live tenant (the operating point that tenant's own phase prediction
//! asked for) and hands back a *grant*: the fastest setting the tenant
//! may run at. Grants are floors on the operating-point index — a tenant
//! may always run slower than its grant (power falls monotonically with
//! the index), never faster — so the budget argument is local and
//! airtight:
//!
//! * a grant is costed at the power backend's declared
//!   [`worst_case`](livephase_pmsim::PowerModel::worst_case) for that
//!   setting — an upper bound on anything a tenant can actually draw
//!   there, for *any* backend in the model zoo (the analytic model's
//!   bound is full-activity power; learned models bound their clamped
//!   feature boxes);
//! * tenants are pinned to cores and a core runs one tenant at a time,
//!   so a core's instantaneous draw is bounded by the *maximum* grant
//!   cost among its tenants, not the sum;
//! * the arbiter admits only grant vectors whose summed per-core maxima
//!   fit the budget, so measured cluster power can never exceed it.
//!
//! Two policies are provided. `priority` serves tenants in priority
//! order (ties by tenant id), giving each the fastest still-affordable
//! setting — noisy neighbors, which carry the lowest priority, are
//! throttled first. `waterfill` starts everyone at the slowest setting
//! and repeatedly upgrades the currently worst-off tenant by one step
//! while the budget holds, converging to the most even feasible
//! allocation.

use livephase_pmsim::{PlatformConfig, PowerModel};
use livephase_telemetry::Histogram;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// How the arbiter divides headroom among competing tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbiterPolicy {
    /// Grant in priority order, fastest affordable setting each.
    Priority,
    /// Upgrade the worst-off tenant one step at a time until the budget
    /// is exhausted.
    WaterFill,
}

impl ArbiterPolicy {
    /// Parses a policy name (`priority` | `waterfill`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "priority" => Some(Self::Priority),
            "waterfill" => Some(Self::WaterFill),
            _ => None,
        }
    }
}

impl fmt::Display for ArbiterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Priority => write!(f, "priority"),
            Self::WaterFill => write!(f, "waterfill"),
        }
    }
}

/// One tenant's per-epoch DVFS request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting tenant.
    pub tenant: u32,
    /// Core the tenant is pinned to.
    pub core: usize,
    /// Operating-point index the tenant's prediction asked for
    /// (0 = fastest).
    pub requested_op: usize,
    /// Arbitration priority; higher wins under the `priority` policy.
    pub priority: u8,
}

/// One tenant's per-epoch grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The tenant granted.
    pub tenant: u32,
    /// The fastest operating-point index the tenant may run at this
    /// epoch (a floor: running at a higher index is always allowed).
    pub op: usize,
    /// Whether the grant is slower than what the tenant requested.
    pub denied: bool,
}

/// The per-epoch power-cap arbiter.
#[derive(Debug)]
pub struct Arbiter {
    /// `cost_w[op]`: worst-case watts one core can draw at setting `op`.
    cost_w: Vec<f64>,
    budget_w: f64,
    policy: ArbiterPolicy,
    cores: usize,
    grants_total: u64,
    denials_total: u64,
    starvation_us: Arc<Histogram>,
}

impl Arbiter {
    /// Builds an arbiter for `cores` cores of `platform` under
    /// `budget_w` watts.
    #[must_use]
    pub fn new(
        platform: &PlatformConfig,
        budget_w: f64,
        policy: ArbiterPolicy,
        cores: usize,
    ) -> Self {
        let cost_w = platform
            .opp_table
            .iter()
            .map(|(_, opp)| platform.power.worst_case(opp))
            .collect();
        let starvation_us = livephase_telemetry::global().histogram(
            "tenants_arbiter_starvation_us",
            "Simulated microseconds tenants spent in denial streaks (granted slower than requested).",
            &[],
        );
        Self {
            cost_w,
            budget_w,
            policy,
            cores,
            grants_total: 0,
            denials_total: 0,
            starvation_us,
        }
    }

    /// The worst-case cost (watts) of running one core at `op`.
    #[must_use]
    pub fn cost_w(&self, op: usize) -> f64 {
        let last = self.cost_w.len().saturating_sub(1);
        self.cost_w.get(op.min(last)).copied().unwrap_or(0.0)
    }

    /// The slowest (highest-index) setting of the platform.
    #[must_use]
    pub fn slowest(&self) -> usize {
        self.cost_w.len().saturating_sub(1)
    }

    /// Whether even the all-slowest grant vector fits the budget for
    /// this request set — if not, the budget is infeasible and the cap
    /// cannot be guaranteed by DVFS alone.
    #[must_use]
    pub fn floor_feasible(&self, requests: &[Request]) -> bool {
        let mut ops = Vec::new();
        ops.resize(requests.len(), self.slowest());
        self.total_cost(requests, &ops) <= self.budget_w + 1e-9
    }

    /// Summed per-core maxima of the grant vector's costs.
    fn total_cost(&self, requests: &[Request], ops: &[usize]) -> f64 {
        let mut core_max = Vec::new();
        core_max.resize(self.cores.max(1), 0.0f64);
        for (i, req) in requests.iter().enumerate() {
            let op = ops.get(i).copied().unwrap_or_else(|| self.slowest());
            let cost = self.cost_w(op);
            let core = req.core.min(core_max.len().saturating_sub(1));
            if let Some(slot) = core_max.get_mut(core) {
                if cost > *slot {
                    *slot = cost;
                }
            }
        }
        core_max.iter().sum()
    }

    /// Whether replacing grant `i` with `candidate` keeps the vector
    /// within budget.
    fn feasible_with(
        &self,
        requests: &[Request],
        ops: &[usize],
        i: usize,
        candidate: usize,
    ) -> bool {
        let mut trial = ops.to_vec();
        if let Some(slot) = trial.get_mut(i) {
            *slot = candidate;
        }
        self.total_cost(requests, &trial) <= self.budget_w + 1e-9
    }

    /// Arbitrates one epoch: returns one [`Grant`] per request, in
    /// request order. Deterministic: ties break by tenant id.
    pub fn arbitrate(&mut self, requests: &[Request]) -> Vec<Grant> {
        let slowest = self.slowest();
        let want: Vec<usize> = requests
            .iter()
            .map(|r| r.requested_op.min(slowest))
            .collect();
        let mut ops: Vec<usize> = Vec::new();
        ops.resize(requests.len(), slowest);

        match self.policy {
            ArbiterPolicy::Priority => {
                let mut order: Vec<usize> = (0..requests.len()).collect();
                order.sort_by(|&a, &b| {
                    let (pa, ta) = requests
                        .get(a)
                        .map_or((0, u32::MAX), |r| (r.priority, r.tenant));
                    let (pb, tb) = requests
                        .get(b)
                        .map_or((0, u32::MAX), |r| (r.priority, r.tenant));
                    pb.cmp(&pa).then(ta.cmp(&tb))
                });
                for &i in &order {
                    let target = want.get(i).copied().unwrap_or(slowest);
                    let current = ops.get(i).copied().unwrap_or(slowest);
                    // Fastest affordable setting no faster than requested.
                    for candidate in target..=current {
                        if self.feasible_with(requests, &ops, i, candidate) {
                            if let Some(slot) = ops.get_mut(i) {
                                *slot = candidate;
                            }
                            break;
                        }
                    }
                }
            }
            ArbiterPolicy::WaterFill => {
                let mut frozen = vec![false; requests.len()];
                loop {
                    // The worst-off upgradable tenant: slowest current
                    // grant, ties by tenant id.
                    let mut pick: Option<(usize, usize, u32)> = None;
                    for (i, req) in requests.iter().enumerate() {
                        if frozen.get(i).copied().unwrap_or(true) {
                            continue;
                        }
                        let current = ops.get(i).copied().unwrap_or(slowest);
                        let target = want.get(i).copied().unwrap_or(slowest);
                        if current <= target {
                            continue;
                        }
                        let better = match pick {
                            None => true,
                            Some((_, best_op, best_tenant)) => {
                                current > best_op
                                    || (current == best_op && req.tenant < best_tenant)
                            }
                        };
                        if better {
                            pick = Some((i, current, req.tenant));
                        }
                    }
                    let Some((i, current, _)) = pick else {
                        break;
                    };
                    let candidate = current.saturating_sub(1);
                    if self.feasible_with(requests, &ops, i, candidate) {
                        if let Some(slot) = ops.get_mut(i) {
                            *slot = candidate;
                        }
                    } else if let Some(slot) = frozen.get_mut(i) {
                        *slot = true;
                    }
                }
            }
        }

        let mut grants = Vec::with_capacity(requests.len());
        for (i, req) in requests.iter().enumerate() {
            let op = ops.get(i).copied().unwrap_or(slowest);
            let denied = op > want.get(i).copied().unwrap_or(slowest);
            if denied {
                self.denials_total += 1;
            } else {
                self.grants_total += 1;
            }
            let op_label = op.to_string();
            let outcome = if denied {
                livephase_telemetry::global().counter(
                    "tenants_arbiter_denials_total",
                    "Epoch requests granted slower than requested, by granted setting.",
                    &[("op", &op_label)],
                )
            } else {
                livephase_telemetry::global().counter(
                    "tenants_arbiter_grants_total",
                    "Epoch requests granted at the requested setting, by granted setting.",
                    &[("op", &op_label)],
                )
            };
            outcome.inc();
            grants.push(Grant {
                tenant: req.tenant,
                op,
                denied,
            });
        }
        grants
    }

    /// Records the simulated length of one completed denial streak.
    pub fn record_starvation(&self, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        let us = (seconds * 1e6).min(9.0e18) as u64;
        self.starvation_us.record(us);
    }

    /// Requests granted at the requested setting so far.
    #[must_use]
    pub fn grants_total(&self) -> u64 {
        self.grants_total
    }

    /// Requests granted slower than requested so far.
    #[must_use]
    pub fn denials_total(&self) -> u64 {
        self.denials_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livephase_pmsim::PlatformConfig;

    fn requests(ops: &[(u32, usize, usize, u8)]) -> Vec<Request> {
        ops.iter()
            .map(|&(tenant, core, requested_op, priority)| Request {
                tenant,
                core,
                requested_op,
                priority,
            })
            .collect()
    }

    fn arbiter(budget_w: f64, policy: ArbiterPolicy, cores: usize) -> Arbiter {
        Arbiter::new(&PlatformConfig::pentium_m(), budget_w, policy, cores)
    }

    #[test]
    fn costs_fall_with_setting() {
        let a = arbiter(100.0, ArbiterPolicy::WaterFill, 1);
        for op in 1..=a.slowest() {
            assert!(a.cost_w(op) < a.cost_w(op - 1));
        }
    }

    #[test]
    fn generous_budget_grants_everything() {
        let mut a = arbiter(1000.0, ArbiterPolicy::Priority, 2);
        let reqs = requests(&[(0, 0, 0, 1), (1, 1, 2, 1), (2, 0, 1, 0)]);
        let grants = a.arbitrate(&reqs);
        assert!(grants.iter().all(|g| !g.denied));
        assert_eq!(
            grants.iter().map(|g| g.op).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
        assert_eq!(a.grants_total(), 3);
        assert_eq!(a.denials_total(), 0);
    }

    #[test]
    fn grants_never_exceed_budget() {
        for policy in [ArbiterPolicy::Priority, ArbiterPolicy::WaterFill] {
            let mut a = arbiter(18.0, policy, 2);
            let reqs = requests(&[(0, 0, 0, 1), (1, 1, 0, 1), (2, 0, 0, 0), (3, 1, 0, 0)]);
            let grants = a.arbitrate(&reqs);
            // Reconstruct the admitted cost and check it fits.
            let ops: Vec<usize> = grants.iter().map(|g| g.op).collect();
            let mut core_max = [0.0f64; 2];
            for (req, &op) in reqs.iter().zip(&ops) {
                core_max[req.core] = core_max[req.core].max(a.cost_w(op));
            }
            assert!(
                core_max.iter().sum::<f64>() <= 18.0 + 1e-9,
                "{policy}: grant vector exceeds the budget"
            );
            assert!(
                grants.iter().any(|g| g.denied),
                "{policy}: a tight budget must deny someone"
            );
        }
    }

    #[test]
    fn priority_throttles_low_priority_first() {
        // Budget fits one core at full speed plus one throttled core.
        let a_probe = arbiter(100.0, ArbiterPolicy::Priority, 1);
        let budget = a_probe.cost_w(0) + a_probe.cost_w(3);
        let mut a = arbiter(budget, ArbiterPolicy::Priority, 2);
        let reqs = requests(&[(0, 0, 0, 1), (1, 1, 0, 0)]);
        let grants = a.arbitrate(&reqs);
        assert_eq!(
            grants.first().map(|g| g.op),
            Some(0),
            "high priority runs fast"
        );
        assert!(
            grants.get(1).is_some_and(|g| g.op >= 3),
            "low priority throttled"
        );
    }

    #[test]
    fn waterfill_spreads_the_pain_evenly() {
        let a_probe = arbiter(100.0, ArbiterPolicy::WaterFill, 1);
        let budget = 2.0 * a_probe.cost_w(2);
        let mut a = arbiter(budget, ArbiterPolicy::WaterFill, 2);
        let reqs = requests(&[(0, 0, 0, 1), (1, 1, 0, 0)]);
        let grants = a.arbitrate(&reqs);
        let ops: Vec<usize> = grants.iter().map(|g| g.op).collect();
        assert_eq!(ops, vec![2, 2], "both tenants settle at the same level");
    }

    #[test]
    fn same_core_tenants_share_a_max_not_a_sum() {
        // Two tenants pinned to one core cost max(), so both can run
        // fast under a budget that could not carry two cores.
        let a_probe = arbiter(100.0, ArbiterPolicy::WaterFill, 1);
        let budget = a_probe.cost_w(0) * 1.1;
        let mut a = arbiter(budget, ArbiterPolicy::WaterFill, 1);
        let reqs = requests(&[(0, 0, 0, 1), (1, 0, 0, 1)]);
        let grants = a.arbitrate(&reqs);
        assert!(grants.iter().all(|g| g.op == 0 && !g.denied));
    }

    #[test]
    fn infeasible_floor_is_detected() {
        let a = arbiter(0.5, ArbiterPolicy::WaterFill, 2);
        let reqs = requests(&[(0, 0, 0, 1), (1, 1, 0, 1)]);
        assert!(!a.floor_feasible(&reqs));
        let generous = arbiter(100.0, ArbiterPolicy::WaterFill, 2);
        assert!(generous.floor_feasible(&reqs));
    }

    #[test]
    fn policy_names_round_trip() {
        assert_eq!(
            ArbiterPolicy::parse("priority"),
            Some(ArbiterPolicy::Priority)
        );
        assert_eq!(
            ArbiterPolicy::parse("waterfill"),
            Some(ArbiterPolicy::WaterFill)
        );
        assert_eq!(ArbiterPolicy::parse("nope"), None);
        assert_eq!(ArbiterPolicy::Priority.to_string(), "priority");
        assert_eq!(ArbiterPolicy::WaterFill.to_string(), "waterfill");
    }
}
