//! # livephase-tenants
//!
//! Virtualized multi-tenant phase governance: the paper's Figure 8 loop
//! (classify → predict → set the operating point) lifted from one
//! process on one Pentium-M to M tenant VMs multiplexed onto K simulated
//! cores under a cluster-wide power cap.
//!
//! Three pieces compose:
//!
//! * **Counter virtualization** ([`cluster`]): a deterministic
//!   round-robin credit scheduler that context-switches tenants with
//!   [`livephase_pmsim::VcpuContext`] save/restore, so each tenant's
//!   PMC/TSC deltas — and therefore its Mem/Uop stream, phase
//!   classifications, and decisions — are bit-for-bit identical to a
//!   solo run of the same trace, regardless of slicing or neighbors.
//! * **Per-tenant engine state**: one shared
//!   [`livephase_engine::DecisionEngine`] keyed by tenant id carries
//!   every tenant's predictor and scoring state — the same per-pid map
//!   the serve shards use, exercised at fleet scale.
//! * **The power-cap arbiter** ([`arbiter`]): each epoch, per-tenant
//!   DVFS requests are granted under a global watt budget using
//!   worst-case per-setting costs and per-core maxima, so measured
//!   cluster power provably never exceeds the budget (priority and
//!   water-filling policies, with starvation accounting).
//!
//! A run is a pure function of its [`ScenarioSpec`]: two runs of the
//! same spec produce identical per-tenant decision digests, which is
//! what the CI determinism gate compares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod arbiter;
pub mod cluster;
pub mod report;
pub mod scenario;

pub use arbiter::{Arbiter, ArbiterPolicy, Grant, Request};
pub use cluster::run_scenario;
pub use report::{fnv1a, ClusterReport, TenantReport, DIGEST_SEED};
pub use scenario::{ScenarioError, ScenarioSpec, DEFAULT_QUANTUM_UOPS, NOISY_BENCHMARK};
