//! Integration bar for the multi-tenant cluster: determinism under a
//! fixed seed, bit-exact counter virtualization against solo runs, and
//! the arbiter's budget guarantee — the ISSUE's acceptance criteria,
//! pinned as tests.

use livephase_tenants::{run_scenario, ArbiterPolicy, ScenarioSpec};

fn small_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(6, 2);
    spec.intervals = 8;
    spec.noisy = 1;
    spec.budget_w = 20.0;
    spec
}

#[test]
fn same_seed_same_digests() {
    let spec = small_spec();
    let a = run_scenario(&spec).unwrap();
    let b = run_scenario(&spec).unwrap();
    assert_eq!(a.decision_digest(), b.decision_digest());
    assert_eq!(a.tenants, b.tenants, "entire per-tenant reports agree");
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.context_switches, b.context_switches);
}

#[test]
fn different_seeds_diverge() {
    let spec = small_spec();
    let mut other = spec.clone();
    other.seed = 1234;
    let a = run_scenario(&spec).unwrap();
    let b = run_scenario(&other).unwrap();
    assert_ne!(a.decision_digest(), b.decision_digest());
}

#[test]
fn counter_virtualization_is_exact_against_solo_runs() {
    // Every tenant's sample stream (uops, mem per interval) and decision
    // stream in the multiplexed cluster must equal its solo run bit for
    // bit, no matter the neighbors, the power cap, or the slicing.
    let spec = small_spec();
    let muxed = run_scenario(&spec).unwrap();
    for t in 0..spec.tenants as u32 {
        let solo = run_scenario(&spec.solo(t)).unwrap();
        let muxed_t = muxed.tenants.iter().find(|r| r.tenant == t).unwrap();
        let solo_t = solo.tenants.first().unwrap();
        assert_eq!(
            muxed_t.sample_digest, solo_t.sample_digest,
            "tenant {t}: counter stream diverged from solo run"
        );
        assert_eq!(
            muxed_t.decision_digest, solo_t.decision_digest,
            "tenant {t}: decision stream diverged from solo run"
        );
        assert_eq!(muxed_t.intervals, solo_t.intervals);
        assert_eq!(
            (muxed_t.scored, muxed_t.correct),
            (solo_t.scored, solo_t.correct),
            "tenant {t}: prediction accuracy diverged from solo run"
        );
    }
}

#[test]
fn quantum_size_does_not_change_decisions() {
    // Slicing is invisible to the virtualized counters: a different
    // scheduling quantum re-times everything but decides identically.
    let spec = small_spec();
    let mut fine = spec.clone();
    fine.quantum_uops = 7_000_000;
    let a = run_scenario(&spec).unwrap();
    let b = run_scenario(&fine).unwrap();
    assert!(b.context_switches >= a.context_switches);
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(x.sample_digest, y.sample_digest, "tenant {}", x.tenant);
        assert_eq!(x.decision_digest, y.decision_digest, "tenant {}", x.tenant);
    }
}

#[test]
fn cap_is_honoured_under_both_policies() {
    for policy in [ArbiterPolicy::Priority, ArbiterPolicy::WaterFill] {
        let mut spec = small_spec();
        spec.policy = policy;
        // Tight enough to force denials: two cores cannot both run the
        // fastest setting (≈13 W each) under 20 W.
        spec.budget_w = 20.0;
        let report = run_scenario(&spec).unwrap();
        assert!(report.budget_feasible, "{policy}: floor must fit");
        assert_eq!(
            report.cap_violation_s, 0.0,
            "{policy}: measured power exceeded the budget"
        );
        assert!(
            report.peak_epoch_power_w <= spec.budget_w + 1e-6,
            "{policy}: peak {} exceeds budget",
            report.peak_epoch_power_w
        );
        assert!(
            report.denied_epochs() > 0,
            "{policy}: a tight budget must deny someone"
        );
    }
}

#[test]
fn generous_budget_never_denies() {
    let mut spec = small_spec();
    spec.budget_w = 500.0;
    let report = run_scenario(&spec).unwrap();
    assert_eq!(report.denied_epochs(), 0);
    assert_eq!(report.cap_violation_s, 0.0);
}

#[test]
fn capping_stretches_time_but_not_decisions() {
    // Grants floor the operating-point index, so a capped tenant can
    // only run slower than (or as fast as) its uncapped self: per-tenant
    // execution time never shrinks. (EDP, by contrast, may legitimately
    // *improve* under a cap — slowing memory-bound phases is the paper's
    // headline result — so time is the invariant, not energy-delay.)
    let tight = small_spec();
    let mut uncapped = tight.clone();
    uncapped.budget_w = 500.0;
    let capped_report = run_scenario(&tight).unwrap();
    let free_report = run_scenario(&uncapped).unwrap();
    for (c, f) in capped_report.tenants.iter().zip(&free_report.tenants) {
        assert!(
            c.time_s >= f.time_s * 0.999,
            "tenant {}: capped run finished faster than uncapped",
            c.tenant
        );
        assert_eq!(
            c.decision_digest, f.decision_digest,
            "tenant {}: the cap changed the decision stream (it must only re-time it)",
            c.tenant
        );
    }
}

#[test]
fn acceptance_scenario_m64_k8_is_deterministic_and_capped() {
    // The ISSUE's acceptance criterion verbatim: M=64 tenants on K=8
    // cores under a power cap, deterministic digests across two runs,
    // cap-violation time zero.
    let mut spec = ScenarioSpec::new(64, 8);
    spec.intervals = 4;
    spec.noisy = 8;
    spec.budget_w = 75.0; // eight cores cannot all run flat out (~13 W each)
    let a = run_scenario(&spec).unwrap();
    let b = run_scenario(&spec).unwrap();
    assert_eq!(a.decision_digest(), b.decision_digest());
    assert!(a.budget_feasible);
    assert_eq!(a.cap_violation_s, 0.0);
    assert!(a.peak_epoch_power_w <= spec.budget_w + 1e-6);
    assert!(a.denied_epochs() > 0, "75 W over 8 cores must throttle");
    assert_eq!(a.tenants.len(), 64);
    assert!(a.tenants.iter().all(|t| t.intervals == 4));
}
