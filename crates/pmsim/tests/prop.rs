//! Property-based tests for the platform simulator.

use livephase_pmsim::{
    AnalyticModel, Cpu, Frequency, IntervalWork, LinearModel, OperatingPointTable, PlatformConfig,
    PowerInput, PowerModel, PowerModelKind, TimingModel, TrainingRecord, TreeModel,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One canonical fitted model per learned backend, trained once on a
/// deterministic sweep of analytic ground truth plus bounded jitter, so
/// every property case exercises the same (realistic) coefficients.
fn backend_zoo() -> &'static [PowerModelKind; 3] {
    static ZOO: OnceLock<[PowerModelKind; 3]> = OnceLock::new();
    ZOO.get_or_init(|| {
        let truth = AnalyticModel::pentium_m();
        let table = OperatingPointTable::pentium_m();
        let mut records = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for (_, opp) in table.iter() {
            for k in 0..10u64 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let jitter = (state >> 40) as f64 / (1u64 << 24) as f64;
                let cf = 0.1 + 0.09 * k as f64;
                let input = PowerInput::new(cf, 0.05 * (1.0 - cf), 0.5 + 2.5 * cf);
                records.push(TrainingRecord {
                    opp,
                    input,
                    measured_w: truth.power(opp, &input) * (0.98 + 0.04 * jitter),
                });
            }
        }
        [
            PowerModelKind::default(),
            PowerModelKind::Linear(LinearModel::fit(&records).expect("sweep is well-posed")),
            PowerModelKind::Tree(TreeModel::fit(&records).expect("sweep is well-posed")),
        ]
    })
}

fn arb_work() -> impl Strategy<Value = IntervalWork> {
    (
        1_000_000u64..200_000_000,
        0u64..80,
        0.2f64..3.0,
        1.0f64..6.0,
    )
        .prop_map(|(uops, mem_per_kuop, cpi, mlp)| {
            IntervalWork::new(uops, uops * 4 / 5, uops / 1000 * mem_per_kuop, cpi, mlp)
        })
}

proptest! {
    /// Splitting work at any point conserves every count and preserves
    /// the Mem/Uop ratio of both halves.
    #[test]
    fn split_conserves_work(work in arb_work(), frac in 0.01f64..0.99) {
        let at = ((work.uops as f64 * frac) as u64).max(1);
        let (a, b) = work.split_at_uops(at);
        match b {
            None => prop_assert_eq!(a, work),
            Some(b) => {
                prop_assert_eq!(a.uops + b.uops, work.uops);
                prop_assert_eq!(a.instructions + b.instructions, work.instructions);
                prop_assert_eq!(a.mem_transactions + b.mem_transactions, work.mem_transactions);
                if work.mem_transactions > 1000 {
                    prop_assert!((a.mem_uop() - work.mem_uop()).abs() / work.mem_uop() < 0.05);
                }
            }
        }
    }

    /// Time decreases (weakly) with frequency; cycles increase (weakly)
    /// as memory stalls cover more core cycles at higher f.
    #[test]
    fn execution_monotonicity(work in arb_work(), lo in 200u32..1200, hi in 1200u32..2400) {
        let t = TimingModel::pentium_m();
        let slow = t.execute(&work, Frequency::from_mhz(lo));
        let fast = t.execute(&work, Frequency::from_mhz(hi));
        prop_assert!(slow.seconds >= fast.seconds - 1e-15);
        prop_assert!(t.bips(&work, Frequency::from_mhz(hi)) >= t.bips(&work, Frequency::from_mhz(lo)) - 1e-12);
    }

    /// Analytic power is monotone in activity and strictly monotone in
    /// the operating point.
    #[test]
    fn power_monotonicity(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let m = AnalyticModel::pentium_m();
        let table = OperatingPointTable::pentium_m();
        let (lo_a, hi_a) = if a <= b { (a, b) } else { (b, a) };
        for (_, opp) in table.iter() {
            prop_assert!(m.activity_power(opp, hi_a) >= m.activity_power(opp, lo_a));
            prop_assert!(m.activity_power(opp, lo_a) > 0.0);
        }
        for w in table.points().windows(2) {
            prop_assert!(m.activity_power(w[0], a) > m.activity_power(w[1], a));
        }
    }

    /// Every backend in the zoo is (weakly) monotone along the
    /// operating-point table for any generated counter vector, and its
    /// worst-case bound dominates its output — the invariant the tenants
    /// arbiter's budget proof rests on.
    #[test]
    fn every_backend_is_monotone_and_bounded(
        cf in 0.0f64..=1.0,
        mem_uop in 0.0f64..0.2,
        upc in 0.0f64..12.0,
    ) {
        let table = OperatingPointTable::pentium_m();
        let input = PowerInput::new(cf, mem_uop, upc);
        for model in backend_zoo() {
            let powers: Vec<f64> = table.iter().map(|(_, opp)| model.power(opp, &input)).collect();
            for w in powers.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12,
                    "{} must not rise toward slower settings: {powers:?}", model.name());
            }
            for (_, opp) in table.iter() {
                let p = model.power(opp, &input);
                prop_assert!(p.is_finite() && p >= 0.0);
                prop_assert!(
                    p <= model.worst_case(opp) + 1e-12,
                    "{}: power {p} exceeds worst_case {} at {opp:?}",
                    model.name(), model.worst_case(opp)
                );
                prop_assert!(model.stall_power(opp) <= model.worst_case(opp) + 1e-12);
            }
        }
    }

    /// However work is chunked, the CPU retires the same totals, charges
    /// the same energy, and fires the same number of PMIs.
    #[test]
    fn chunking_does_not_change_physics(
        work in arb_work(),
        cuts in proptest::collection::vec(0.05f64..0.95, 0..4),
    ) {
        let config = PlatformConfig {
            pmi_granularity_uops: 10_000_000,
            ..PlatformConfig::pentium_m()
        };
        let run = |chunks: Vec<IntervalWork>| {
            let mut cpu = Cpu::new(&config);
            let mut pmis = 0u32;
            for c in chunks {
                cpu.push_work(c);
                while cpu.run_to_pmi().is_some() {
                    pmis += 1;
                }
            }
            while cpu.flush_partial_interval().is_some() {
                pmis += 1;
            }
            (cpu.totals(), pmis)
        };

        // Single chunk.
        let (whole, pmis_whole) = run(vec![work]);
        // Split into pieces at the sorted cut points.
        let mut points: Vec<u64> = cuts
            .iter()
            .map(|f| ((work.uops as f64 * f) as u64).clamp(1, work.uops - 1))
            .collect();
        points.sort_unstable();
        points.dedup();
        let mut pieces = Vec::new();
        let mut rest = work;
        let mut consumed = 0u64;
        for p in points {
            if p <= consumed || p - consumed >= rest.uops {
                continue;
            }
            let (a, b) = rest.split_at_uops(p - consumed);
            consumed = p;
            pieces.push(a);
            match b {
                Some(b) => rest = b,
                None => break,
            }
        }
        pieces.push(rest);
        let (split, pmis_split) = run(pieces);

        prop_assert_eq!(whole.uops, split.uops);
        prop_assert_eq!(whole.instructions, split.instructions);
        prop_assert_eq!(whole.mem_transactions, split.mem_transactions);
        prop_assert!((whole.time_s - split.time_s).abs() / whole.time_s < 1e-9);
        prop_assert!((whole.energy_j - split.energy_j).abs() / whole.energy_j < 1e-9);
        prop_assert_eq!(pmis_whole, pmis_split);
    }

    /// The recorded waveform always carries exactly the consumed energy.
    #[test]
    fn waveform_matches_ground_truth(work in arb_work(), setting in 0usize..6) {
        let config = PlatformConfig::pentium_m().with_power_trace();
        let mut cpu = Cpu::new(&config);
        cpu.set_dvfs(setting).expect("six settings");
        cpu.push_work(work);
        while cpu.run_to_pmi().is_some() {}
        let _ = cpu.flush_partial_interval();
        let totals = cpu.totals();
        let trace = cpu.into_power_trace();
        prop_assert!((trace.total_energy_j() - totals.energy_j).abs() <= 1e-9 * totals.energy_j.max(1.0));
        prop_assert!((trace.total_time_s() - totals.time_s).abs() <= 1e-12 + 1e-9 * totals.time_s);
    }

    /// The thermal model never leaves the band spanned by the ambient and
    /// the steady state, converges monotonically toward the steady state,
    /// and composes: stepping twice equals stepping once for the summed
    /// duration.
    #[test]
    fn thermal_step_properties(
        t0 in 20.0f64..110.0,
        power in 0.0f64..20.0,
        dt_a in 0.0f64..30.0,
        dt_b in 0.0f64..30.0,
    ) {
        let m = livephase_pmsim::ThermalModel::pentium_m();
        let t_ss = m.steady_state(power);
        let one = m.step(t0, power, dt_a + dt_b);
        let two = m.step(m.step(t0, power, dt_a), power, dt_b);
        prop_assert!((one - two).abs() < 1e-9, "semigroup property");
        // The trajectory stays between t0 and the steady state.
        let (lo, hi) = if t0 <= t_ss { (t0, t_ss) } else { (t_ss, t0) };
        prop_assert!(one >= lo - 1e-9 && one <= hi + 1e-9);
        // Longer exposure gets (weakly) closer to the steady state.
        prop_assert!((two - t_ss).abs() <= (t0 - t_ss).abs() + 1e-9);
    }

    /// The thermal state's peak is the supremum of the trajectory for any
    /// power schedule.
    #[test]
    fn thermal_peak_dominates_trajectory(
        schedule in proptest::collection::vec((0.0f64..16.0, 0.01f64..5.0), 1..20),
    ) {
        let mut s = livephase_pmsim::ThermalState::new(
            livephase_pmsim::ThermalModel::pentium_m(),
        );
        let mut seen = s.temperature_c();
        for &(p, dt) in &schedule {
            s.advance(p, dt);
            seen = seen.max(s.temperature_c());
        }
        prop_assert!(s.peak_c() >= seen - 1e-9);
        prop_assert!(s.peak_c() >= s.model().t_ambient);
    }

    /// Counter-derived Mem/Uop equals the work's Mem/Uop at any setting:
    /// the DVFS-invariance the paper's phases rely on, end to end.
    #[test]
    fn counters_report_dvfs_invariant_mem_uop(work in arb_work(), setting in 0usize..6) {
        prop_assume!(work.uops >= 10_000_000);
        let config = PlatformConfig {
            pmi_granularity_uops: 10_000_000,
            ..PlatformConfig::pentium_m()
        };
        let mut cpu = Cpu::new(&config);
        cpu.set_dvfs(setting).expect("valid");
        cpu.push_work(work);
        let pmi = cpu.run_to_pmi().expect("at least one interval");
        let measured = pmi.metrics.mem_uop().get();
        prop_assert!((measured - work.mem_uop()).abs() < 1e-3);
    }
}
