//! Golden-coefficient pin for the learned power backends.
//!
//! The model zoo's acceptance story is anchored on determinism: a
//! learned model is a pure function of its training spec. This test
//! fits `LinearModel` on a fixed, seeded training sweep and compares
//! the coefficients against committed values — if the fit pipeline's
//! numerics change (solver order, ridge term, feature clamps), this
//! fails loudly instead of silently shifting every downstream digest.

use livephase_pmsim::{
    AnalyticModel, LinearModel, OperatingPointTable, PowerInput, PowerModel, TrainingRecord,
    TreeModel,
};

/// The fixed training sweep: analytic ground truth over every operating
/// point with a deterministic LCG jitter — the same construction the
/// property tests train on, pinned here by value.
fn golden_records() -> Vec<TrainingRecord> {
    let truth = AnalyticModel::pentium_m();
    let table = OperatingPointTable::pentium_m();
    let mut records = Vec::new();
    let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
    for (_, opp) in table.iter() {
        for k in 0..12u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let jitter = (state >> 40) as f64 / (1u64 << 24) as f64;
            let cf = 0.05 + 0.08 * k as f64;
            let input = PowerInput::new(cf, 0.06 * (1.0 - cf), 0.4 + 3.0 * cf);
            records.push(TrainingRecord {
                opp,
                input,
                measured_w: truth.power(opp, &input) * (0.985 + 0.03 * jitter),
            });
        }
    }
    records
}

#[test]
fn linear_fit_matches_committed_coefficients() {
    let records = golden_records();
    let fitted = LinearModel::fit(&records).expect("the golden sweep is well-posed");
    let again = LinearModel::fit(&records).expect("the golden sweep is well-posed");
    assert_eq!(
        fitted.weights(),
        again.weights(),
        "refitting identical records must be bit-identical"
    );
    // Committed coefficients, printed by this test's first run and
    // pinned. A tight tolerance (not bit-equality) keeps the pin stable
    // across std/libm rounding differences between toolchains while
    // still catching any change to the fit pipeline itself.
    let committed = [
        -2.533495816632397_f64,
        2.2189944170885223,
        0.5909388708547293,
        -0.19973517051268244,
        1.3717668926979,
    ];
    let weights = fitted.weights();
    println!("fitted weights: {weights:?}");
    for (got, want) in weights.iter().zip(committed.iter()) {
        assert!(
            (got - want).abs() <= 1e-9_f64.max(want.abs() * 1e-9),
            "coefficient drifted: fitted {weights:?}, committed {committed:?}"
        );
    }
}

#[test]
fn tree_fit_is_deterministic_on_the_golden_sweep() {
    let records = golden_records();
    let a = TreeModel::fit(&records).expect("the golden sweep is well-posed");
    let b = TreeModel::fit(&records).expect("the golden sweep is well-posed");
    assert_eq!(a, b, "refitting identical records must be bit-identical");
    assert!(a.leaf_count() >= 2, "the sweep has counter structure");
}
