//! Performance monitoring counters (PMCs) and the performance monitoring
//! interrupt (PMI).
//!
//! The paper's Pentium-M exposes **two** programmable counters plus the
//! time stamp counter. Its prototype dedicates one programmable counter to
//! `UOPS_RETIRED` — armed to overflow every 100 M uops, which raises the
//! PMI that drives the whole phase-monitoring loop — and the other to
//! `BUS_TRAN_MEM`. This module reproduces that counter file, including the
//! stop/read/clear/restart protocol the interrupt handler follows.

use livephase_core::IntervalMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware event a programmable counter can be configured to count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// Micro-ops retired (`UOPS_RETIRED`).
    UopsRetired,
    /// Architectural instructions retired (`INSTR_RETIRED`).
    InstrRetired,
    /// Memory bus transactions (`BUS_TRAN_MEM`).
    BusTranMem,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Event::UopsRetired => "UOPS_RETIRED",
            Event::InstrRetired => "INSTR_RETIRED",
            Event::BusTranMem => "BUS_TRAN_MEM",
        };
        f.write_str(s)
    }
}

/// Event deltas for a slice of execution, used to advance the counter file.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EventCounts {
    /// Micro-ops retired in the slice.
    pub uops: u64,
    /// Instructions retired in the slice.
    pub instructions: u64,
    /// Memory bus transactions in the slice.
    pub mem_transactions: u64,
    /// Core cycles elapsed in the slice (drives the TSC).
    pub cycles: f64,
}

/// One programmable performance counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ProgrammableCounter {
    event: Event,
    value: u64,
    /// Counter overflows (raises the PMI) when `value` reaches this.
    overflow_at: Option<u64>,
}

impl ProgrammableCounter {
    fn count_for(&self, c: &EventCounts) -> u64 {
        match self.event {
            Event::UopsRetired => c.uops,
            Event::InstrRetired => c.instructions,
            Event::BusTranMem => c.mem_transactions,
        }
    }
}

/// The simulated counter file: two programmable counters and a TSC.
///
/// ```
/// use livephase_pmsim::pmc::{CounterFile, Event, EventCounts};
///
/// // The paper's configuration: PMI every 100 M uops.
/// let mut pmcs = CounterFile::pentium_m(100_000_000);
/// let slice = EventCounts { uops: 60_000_000, instructions: 50_000_000,
///                           mem_transactions: 900_000, cycles: 9.0e7 };
/// assert_eq!(pmcs.uops_until_overflow(), Some(100_000_000));
/// pmcs.record(&slice);
/// assert_eq!(pmcs.uops_until_overflow(), Some(40_000_000));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterFile {
    counters: [ProgrammableCounter; 2],
    /// Ground-truth instructions retired this interval. The real Pentium-M
    /// has no third programmable counter — the paper's evaluation obtains
    /// per-interval instruction counts on the logging side; the simulator
    /// tracks them here as evaluation support.
    instr_retired: u64,
    tsc: f64,
    /// Cycle count at the last interval reset, for TSC deltas.
    tsc_at_reset: f64,
    running: bool,
}

impl CounterFile {
    /// Builds the paper's counter configuration: counter 0 counts
    /// `UOPS_RETIRED` and overflows (raising the PMI) every
    /// `pmi_granularity_uops`; counter 1 counts `BUS_TRAN_MEM`.
    ///
    /// # Panics
    ///
    /// Panics if `pmi_granularity_uops` is zero.
    #[must_use]
    pub fn pentium_m(pmi_granularity_uops: u64) -> Self {
        assert!(pmi_granularity_uops > 0, "PMI granularity must be positive");
        Self {
            counters: [
                ProgrammableCounter {
                    event: Event::UopsRetired,
                    value: 0,
                    overflow_at: Some(pmi_granularity_uops),
                },
                ProgrammableCounter {
                    event: Event::BusTranMem,
                    value: 0,
                    overflow_at: None,
                },
            ],
            instr_retired: 0,
            tsc: 0.0,
            tsc_at_reset: 0.0,
            running: true,
        }
    }

    /// Whether the counters are currently counting (the PMI handler stops
    /// them on entry and restarts them on exit).
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Stops the counters (handler entry).
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Restarts the counters (handler exit).
    pub fn start(&mut self) {
        self.running = true;
    }

    /// Advances the counters by an execution slice.
    ///
    /// The TSC always advances (it is wall-clock driven); the programmable
    /// counters only advance while running.
    pub fn record(&mut self, counts: &EventCounts) {
        self.tsc += counts.cycles;
        if !self.running {
            return;
        }
        for c in &mut self.counters {
            c.value += c.count_for(counts);
        }
        self.instr_retired += counts.instructions;
    }

    /// Advances only the TSC (stall slices retire nothing).
    pub fn record_stall_cycles(&mut self, cycles: f64) {
        self.tsc += cycles;
    }

    /// Micro-ops that may still retire before the uop counter overflows and
    /// raises the PMI. `None` if no counter is armed for overflow.
    #[must_use]
    pub fn uops_until_overflow(&self) -> Option<u64> {
        self.counters.iter().find_map(|c| {
            if c.event != Event::UopsRetired {
                return None;
            }
            c.overflow_at.map(|t| t.saturating_sub(c.value))
        })
    }

    /// Whether the armed counter has reached its overflow threshold.
    #[must_use]
    pub fn overflow_pending(&self) -> bool {
        self.uops_until_overflow() == Some(0)
    }

    /// Reads the interval metrics accumulated since the last
    /// [`reset_interval`](Self::reset_interval): the handler's
    /// "stop/read counters" step.
    #[must_use]
    pub fn read(&self) -> IntervalMetrics {
        let value_of = |event: Event| {
            self.counters
                .iter()
                .find(|c| c.event == event)
                .map_or(0, |c| c.value)
        };
        IntervalMetrics {
            uops_retired: value_of(Event::UopsRetired),
            instructions_retired: self.instr_retired,
            mem_transactions: value_of(Event::BusTranMem),
            cycles: (self.tsc - self.tsc_at_reset).round() as u64,
        }
    }

    /// Clears the programmable counters and re-bases the TSC delta: the
    /// handler's "reinitialize/start counters" step.
    pub fn reset_interval(&mut self) {
        for c in &mut self.counters {
            c.value = 0;
        }
        self.instr_retired = 0;
        self.tsc_at_reset = self.tsc;
        self.running = true;
    }

    /// The raw (never-reset) time stamp counter, in cycles.
    #[must_use]
    pub fn tsc(&self) -> f64 {
        self.tsc
    }

    /// Re-arms the uop counter to overflow after `uops` *further* retired
    /// micro-ops (relative to its current value). The handler uses this to
    /// lengthen or shorten the next sampling interval on the fly
    /// (adaptive sampling).
    ///
    /// # Panics
    ///
    /// Panics if `uops` is zero.
    pub fn rearm_overflow(&mut self, uops: u64) {
        assert!(uops > 0, "PMI granularity must be positive");
        // At most once per sampling interval (adaptive re-arm), so the
        // registry's read-lock fast path is cheap enough here.
        livephase_telemetry::global()
            .counter(
                "pmsim_pmi_rearm_total",
                "Adaptive re-arms of the uop-overflow PMI threshold.",
                &[],
            )
            .inc();
        for c in &mut self.counters {
            if c.event == Event::UopsRetired {
                c.overflow_at = Some(c.value + uops);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(uops: u64, mem: u64) -> EventCounts {
        EventCounts {
            uops,
            instructions: uops * 4 / 5,
            mem_transactions: mem,
            cycles: uops as f64 * 1.5,
        }
    }

    #[test]
    fn counts_and_overflows() {
        let mut f = CounterFile::pentium_m(100);
        f.record(&slice(60, 3));
        assert_eq!(f.uops_until_overflow(), Some(40));
        assert!(!f.overflow_pending());
        f.record(&slice(40, 2));
        assert!(f.overflow_pending());
    }

    #[test]
    fn read_returns_interval_metrics() {
        let mut f = CounterFile::pentium_m(1_000_000);
        f.record(&slice(100, 5));
        let m = f.read();
        assert_eq!(m.uops_retired, 100);
        assert_eq!(m.instructions_retired, 80);
        assert_eq!(m.mem_transactions, 5);
        assert_eq!(m.cycles, 150);
    }

    #[test]
    fn reset_rebases_interval() {
        let mut f = CounterFile::pentium_m(1_000_000);
        f.record(&slice(100, 5));
        f.reset_interval();
        let m = f.read();
        assert_eq!(m.uops_retired, 0);
        assert_eq!(m.cycles, 0);
        // TSC itself is monotone and never reset.
        assert!(f.tsc() > 0.0);
    }

    #[test]
    fn stopped_counters_freeze_but_tsc_advances() {
        let mut f = CounterFile::pentium_m(1_000_000);
        f.stop();
        f.record(&slice(100, 5));
        let m = f.read();
        assert_eq!(m.uops_retired, 0, "stopped counters must not count");
        assert_eq!(m.cycles, 150, "TSC is wall-clock driven");
        f.start();
        f.record(&slice(100, 5));
        assert_eq!(f.read().uops_retired, 100);
    }

    #[test]
    fn stall_cycles_only_move_tsc() {
        let mut f = CounterFile::pentium_m(1_000_000);
        f.record_stall_cycles(500.0);
        let m = f.read();
        assert_eq!(m.cycles, 500);
        assert_eq!(m.uops_retired, 0);
    }

    #[test]
    fn event_display_matches_intel_names() {
        assert_eq!(Event::UopsRetired.to_string(), "UOPS_RETIRED");
        assert_eq!(Event::BusTranMem.to_string(), "BUS_TRAN_MEM");
        assert_eq!(Event::InstrRetired.to_string(), "INSTR_RETIRED");
    }

    #[test]
    #[should_panic(expected = "PMI granularity")]
    fn zero_granularity_rejected() {
        let _ = CounterFile::pentium_m(0);
    }

    #[test]
    fn rearm_changes_the_next_window() {
        let mut f = CounterFile::pentium_m(100);
        f.record(&slice(100, 1));
        assert!(f.overflow_pending());
        f.reset_interval();
        f.rearm_overflow(300);
        f.record(&slice(200, 2));
        assert_eq!(f.uops_until_overflow(), Some(100));
        f.record(&slice(100, 1));
        assert!(f.overflow_pending());
    }

    #[test]
    #[should_panic(expected = "PMI granularity")]
    fn rearm_rejects_zero() {
        CounterFile::pentium_m(100).rearm_overflow(0);
    }
}
