//! The piecewise-constant power waveform emitted by the simulated CPU.
//!
//! The paper measures processor power externally: sense resistors between
//! the voltage regulator and the CPU feed a signal-conditioning unit and a
//! DAQ sampling at 40 µs. To reproduce that measurement path, the simulator
//! records an analog-equivalent waveform — a sequence of
//! constant-power segments, each annotated with the CPU supply voltage and
//! the 3-bit parallel-port state the deployed system uses to synchronize
//! the DAQ with execution (Section 5.4):
//!
//! * **bit 0** — toggled by the PMI handler each sampling interval, letting
//!   the DAQ attribute samples to phases;
//! * **bit 1** — set while the PMI handler itself runs;
//! * **bit 2** — set for the duration of the application.

use serde::{Deserialize, Serialize};

/// Parallel-port bit masks (Section 5.4 of the paper).
pub mod pport {
    /// Toggled each sampling interval (phase marker).
    pub const PHASE_TOGGLE: u8 = 0b001;
    /// High while the PMI handler executes.
    pub const IN_HANDLER: u8 = 0b010;
    /// High while the application runs.
    pub const APP_RUNNING: u8 = 0b100;
}

/// A constant-power slice of execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSegment {
    /// Duration of the segment in seconds.
    pub duration_s: f64,
    /// CPU power draw during the segment, in watts.
    pub power_w: f64,
    /// CPU supply voltage during the segment, in volts.
    pub voltage_v: f64,
    /// Parallel-port bit state during the segment.
    pub pport_bits: u8,
}

impl PowerSegment {
    /// Energy of the segment in joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.duration_s * self.power_w
    }

    /// Current drawn from the supply, in amperes (`P / V`).
    #[must_use]
    pub fn current_a(&self) -> f64 {
        self.power_w / self.voltage_v
    }
}

/// An append-only waveform of [`PowerSegment`]s.
///
/// ```
/// use livephase_pmsim::trace::{PowerTrace, PowerSegment};
/// let mut t = PowerTrace::new();
/// t.push(PowerSegment { duration_s: 0.1, power_w: 13.0, voltage_v: 1.484, pport_bits: 0b100 });
/// t.push(PowerSegment { duration_s: 0.2, power_w: 3.0, voltage_v: 0.956, pport_bits: 0b101 });
/// assert!((t.total_time_s() - 0.3).abs() < 1e-12);
/// assert!((t.total_energy_j() - (1.3 + 0.6)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    segments: Vec<PowerSegment>,
}

impl PowerTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment.
    ///
    /// Zero-duration segments are dropped (they carry no energy and would
    /// only burden the DAQ sampler).
    ///
    /// # Panics
    ///
    /// Panics if the segment has negative duration or non-finite fields.
    pub fn push(&mut self, seg: PowerSegment) {
        assert!(
            seg.duration_s.is_finite() && seg.duration_s >= 0.0,
            "segment duration must be finite and non-negative"
        );
        assert!(
            seg.power_w.is_finite() && seg.power_w >= 0.0,
            "segment power must be finite and non-negative"
        );
        assert!(
            seg.voltage_v.is_finite() && seg.voltage_v > 0.0,
            "segment voltage must be finite and positive"
        );
        if seg.duration_s > 0.0 {
            self.segments.push(seg);
        }
    }

    /// The recorded segments, in time order.
    #[must_use]
    pub fn segments(&self) -> &[PowerSegment] {
        &self.segments
    }

    /// Total recorded wall-clock time in seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.segments.iter().map(|s| s.duration_s).sum()
    }

    /// Total recorded energy in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.segments.iter().map(PowerSegment::energy_j).sum()
    }

    /// Average power over the whole trace, in watts. Zero for an empty
    /// trace.
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        let t = self.total_time_s();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// Number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the trace holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl Extend<PowerSegment> for PowerTrace {
    fn extend<T: IntoIterator<Item = PowerSegment>>(&mut self, iter: T) {
        for seg in iter {
            self.push(seg);
        }
    }
}

impl FromIterator<PowerSegment> for PowerTrace {
    fn from_iter<T: IntoIterator<Item = PowerSegment>>(iter: T) -> Self {
        let mut t = Self::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(duration_s: f64, power_w: f64) -> PowerSegment {
        PowerSegment {
            duration_s,
            power_w,
            voltage_v: 1.484,
            pport_bits: 0,
        }
    }

    #[test]
    fn aggregates() {
        let t: PowerTrace = [seg(1.0, 10.0), seg(1.0, 20.0)].into_iter().collect();
        assert_eq!(t.len(), 2);
        assert!((t.total_energy_j() - 30.0).abs() < 1e-12);
        assert!((t.average_power_w() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.average_power_w(), 0.0);
        assert_eq!(t.total_time_s(), 0.0);
    }

    #[test]
    fn zero_duration_segments_dropped() {
        let mut t = PowerTrace::new();
        t.push(seg(0.0, 10.0));
        assert!(t.is_empty());
    }

    #[test]
    fn current_is_p_over_v() {
        let s = seg(1.0, 14.84);
        assert!((s.current_a() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn negative_duration_rejected() {
        PowerTrace::new().push(seg(-1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "power")]
    fn negative_power_rejected() {
        PowerTrace::new().push(seg(1.0, -1.0));
    }
}
