//! The simulated CPU: timing + power + counters + DVFS glued together.
//!
//! The driving loop mirrors the deployed system of the paper:
//!
//! ```text
//! ┌──────────────┐  push_work   ┌─────┐  run_to_pmi   ┌────────────────┐
//! │ workload gen │ ───────────▶ │ Cpu │ ────────────▶ │ PMI handler    │
//! └──────────────┘              └─────┘  PmiRecord    │ (governor)     │
//!                                  ▲                  └────────────────┘
//!                                  │ set_dvfs / service_pmi_overhead │
//!                                  └─────────────────────────────────┘
//! ```
//!
//! Work is executed at the current operating point; every
//! `pmi_granularity_uops` retired micro-ops the uop counter overflows and a
//! [`PmiRecord`] is produced — exactly the stop/read/clear/restart protocol
//! of the paper's interrupt handler. The caller (the governor) then charges
//! handler overhead and optionally switches the operating point before
//! resuming execution. [`Cpu::run_to_pmi_with`] fuses the left edge of the
//! diagram: instead of a pre-filled queue, work chunks are pulled from a
//! generator callback one at a time, so a whole run needs O(1) workload
//! memory.

use crate::dvfs::{DvfsController, InvalidSetting};
use crate::opp::{OperatingPoint, OperatingPointTable};
use crate::pmc::{CounterFile, EventCounts};
use crate::power::{PowerInput, PowerModel, PowerModelKind};
use crate::timing::{IntervalWork, TimingModel};
use crate::trace::{PowerSegment, PowerTrace};
use livephase_core::IntervalMetrics;
use livephase_telemetry::{Counter, Gauge};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant; // lint:allow(determinism): wall clock feeds the throughput gauge only, never simulated time

/// Static configuration of the simulated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Available DVFS settings, fastest first.
    pub opp_table: OperatingPointTable,
    /// Execution-time model.
    pub timing: TimingModel,
    /// Power-model backend (the analytic calibration by default; learned
    /// backends can be swapped in without touching any consumer).
    pub power: PowerModelKind,
    /// Micro-ops per sampling interval (the paper uses 100 M).
    pub pmi_granularity_uops: u64,
    /// Stall charged per actual voltage/frequency switch, in seconds.
    pub dvfs_transition_s: f64,
    /// Whether to record the analog power waveform for the DAQ rig.
    /// Recording costs memory proportional to run length.
    pub record_power_trace: bool,
}

impl PlatformConfig {
    /// The paper's prototype platform: Table 2 settings, 100 M-uop PMI
    /// granularity, 50 µs DVFS transitions, trace recording off.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            opp_table: OperatingPointTable::pentium_m(),
            timing: TimingModel::pentium_m(),
            power: PowerModelKind::default(),
            pmi_granularity_uops: 100_000_000,
            dvfs_transition_s: 50e-6,
            record_power_trace: false,
        }
    }

    /// Enables power-waveform recording (builder style).
    #[must_use]
    pub fn with_power_trace(mut self) -> Self {
        self.record_power_trace = true;
        self
    }

    fn validate(&self) {
        assert!(
            self.pmi_granularity_uops > 0,
            "PMI granularity must be positive"
        );
        assert!(
            self.dvfs_transition_s.is_finite() && self.dvfs_transition_s >= 0.0,
            "DVFS transition latency must be finite and non-negative"
        );
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self::pentium_m()
    }
}

/// What the PMI handler sees when the uop counter overflows: the interval's
/// counter readings plus the simulator's ground-truth accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmiRecord {
    /// Counter readings for the elapsed interval (the handler's only real
    /// input on the deployed system).
    pub metrics: IntervalMetrics,
    /// Simulated wall-clock time at the interrupt, in seconds.
    pub timestamp_s: f64,
    /// Wall-clock duration of the elapsed interval, in seconds.
    pub interval_seconds: f64,
    /// Energy consumed during the elapsed interval, in joules
    /// (ground truth; the paper measures this externally with the DAQ).
    pub interval_energy_j: f64,
    /// Operating point in effect when the interrupt fired.
    pub opp: OperatingPoint,
    /// DVFS setting index (0 = fastest) in effect when the interrupt fired.
    pub dvfs_index: usize,
}

/// Whole-run ground-truth totals.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTotals {
    /// Total simulated wall-clock time in seconds.
    pub time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Instructions retired.
    pub instructions: u64,
    /// Micro-ops retired.
    pub uops: u64,
    /// Memory bus transactions issued.
    pub mem_transactions: u64,
}

impl RunTotals {
    /// Billions of instructions per second over the whole run.
    #[must_use]
    pub fn bips(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.time_s / 1e9
        }
    }

    /// Average power over the whole run, in watts.
    #[must_use]
    pub fn average_power_w(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.energy_j / self.time_s
        }
    }

    /// Energy-delay product in joule-seconds — the paper's headline
    /// power/performance efficiency metric.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }
}

/// Saved per-vCPU counter state for virtualized multiplexing.
///
/// A hypervisor multiplexing several tenants onto one [`Cpu`] stores the
/// outgoing tenant's context on every switch and loads the incoming one:
/// the counter file (PMC deltas, TSC, PMI arm state) plus the partial
/// sampling-interval time/energy the tenant has already accrued. Because
/// the counters travel with the tenant, its per-interval Mem/Uop readings
/// are bit-for-bit identical to a solo run regardless of how execution is
/// sliced — the property the paper's phase classifier depends on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VcpuContext {
    counters: CounterFile,
    /// Simulated seconds accrued in the tenant's current partial interval.
    partial_time_s: f64,
    /// Joules accrued in the tenant's current partial interval.
    partial_energy_j: f64,
}

impl VcpuContext {
    /// A fresh context with idle counters armed to overflow every
    /// `pmi_granularity_uops` retired micro-ops.
    ///
    /// # Panics
    ///
    /// Panics if `pmi_granularity_uops` is zero.
    #[must_use]
    pub fn new(pmi_granularity_uops: u64) -> Self {
        Self {
            counters: CounterFile::pentium_m(pmi_granularity_uops),
            partial_time_s: 0.0,
            partial_energy_j: 0.0,
        }
    }

    /// Simulated seconds accrued in the saved partial interval.
    #[must_use]
    pub fn partial_time_s(&self) -> f64 {
        self.partial_time_s
    }

    /// Joules accrued in the saved partial interval.
    #[must_use]
    pub fn partial_energy_j(&self) -> f64 {
        self.partial_energy_j
    }
}

/// Handles into the global telemetry registry, resolved once per CPU so
/// the PMI path never takes the registry lock.
#[derive(Debug, Clone)]
struct CpuMetrics {
    pmi_total: Arc<Counter>,
    sim_cycles_per_wall_second: Arc<Gauge>,
}

impl CpuMetrics {
    fn new() -> Self {
        let reg = livephase_telemetry::global();
        Self {
            pmi_total: reg.counter(
                "pmsim_pmi_total",
                "Performance-monitoring interrupts delivered by the simulator.",
                &[],
            ),
            sim_cycles_per_wall_second: reg.gauge(
                "pmsim_sim_cycles_per_wall_second",
                "Simulation throughput: simulated core cycles per wall-clock second.",
                &[],
            ),
        }
    }
}

/// The simulated processor.
///
/// Borrows its [`PlatformConfig`] — many CPUs (e.g. a parallel sweep's
/// workers) share one platform description without cloning it per run.
#[derive(Debug, Clone)]
pub struct Cpu<'a> {
    config: &'a PlatformConfig,
    counters: CounterFile,
    dvfs: DvfsController,
    pending: VecDeque<IntervalWork>,
    totals: RunTotals,
    /// Time/energy marks at the start of the current sampling interval.
    interval_start_time_s: f64,
    interval_start_energy_j: f64,
    trace: PowerTrace,
    pport_bits: u8,
    metrics: CpuMetrics,
    /// Wall-clock construction time, for the throughput gauge.
    wall_start: Instant, // lint:allow(determinism): throughput telemetry only
}

impl<'a> Cpu<'a> {
    /// Creates a CPU at the fastest operating point with idle counters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero PMI granularity or a
    /// negative transition latency).
    #[must_use]
    pub fn new(config: &'a PlatformConfig) -> Self {
        config.validate();
        let counters = CounterFile::pentium_m(config.pmi_granularity_uops);
        let dvfs = DvfsController::new(config.opp_table.clone(), config.dvfs_transition_s);
        Self {
            config,
            counters,
            dvfs,
            pending: VecDeque::new(),
            totals: RunTotals::default(),
            interval_start_time_s: 0.0,
            interval_start_energy_j: 0.0,
            trace: PowerTrace::new(),
            pport_bits: 0,
            metrics: CpuMetrics::new(),
            wall_start: Instant::now(), // lint:allow(determinism): throughput telemetry only
        }
    }

    /// Queues a chunk of work for execution.
    pub fn push_work(&mut self, work: IntervalWork) {
        self.pending.push_back(work);
    }

    /// Queued micro-ops not yet executed.
    #[must_use]
    pub fn pending_uops(&self) -> u64 {
        self.pending.iter().map(|w| w.uops).sum()
    }

    /// Executes queued work until the uop counter overflows, then performs
    /// the handler's stop/read/clear/restart protocol and returns the
    /// interval record. Returns `None` when the queue empties before the
    /// overflow threshold — push more work and call again, or finish with
    /// [`flush_partial_interval`](Self::flush_partial_interval).
    pub fn run_to_pmi(&mut self) -> Option<PmiRecord> {
        loop {
            if self.counters.overflow_pending() {
                return Some(self.take_interval_record());
            }
            let work = self.pending.pop_front()?;
            // The uop counter is always armed; treat the impossible
            // unarmed state as an empty queue rather than panicking.
            let remaining = self.counters.uops_until_overflow()?;
            debug_assert!(remaining > 0);
            let (now, rest) = if work.uops > remaining {
                work.split_at_uops(remaining)
            } else {
                (work, None)
            };
            if let Some(rest) = rest {
                self.pending.push_front(rest);
            }
            self.execute_chunk(&now);
        }
    }

    /// Streaming form of [`run_to_pmi`](Self::run_to_pmi): whenever the
    /// work queue empties before the overflow threshold, pulls the next
    /// chunk from `refill` — the fused generator → platform pipeline that
    /// never materializes a workload. Returns `None` only when `refill` is
    /// exhausted (finish with
    /// [`flush_partial_interval`](Self::flush_partial_interval)).
    pub fn run_to_pmi_with(
        &mut self,
        mut refill: impl FnMut() -> Option<IntervalWork>,
    ) -> Option<PmiRecord> {
        loop {
            if let Some(r) = self.run_to_pmi() {
                return Some(r);
            }
            self.push_work(refill()?);
        }
    }

    /// Reads out whatever partial interval has accumulated, if any —
    /// the tail of a run that ends off the sampling grid.
    pub fn flush_partial_interval(&mut self) -> Option<PmiRecord> {
        // Drain any executable leftovers first (callers normally already
        // exhausted `run_to_pmi`); a still-pending full interval is
        // surfaced before the partial tail.
        if let Some(r) = self.run_to_pmi() {
            return Some(r);
        }
        if self.counters.read().uops_retired == 0 {
            return None;
        }
        Some(self.take_interval_record())
    }

    /// Charges the PMI handler's own execution cost: a stall at the current
    /// operating point with the `IN_HANDLER` parallel-port bit raised.
    pub fn service_pmi_overhead(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "overhead must be >= 0"
        );
        if seconds == 0.0 {
            return;
        }
        let bits = self.pport_bits | crate::trace::pport::IN_HANDLER;
        self.stall(seconds, bits);
    }

    /// Requests DVFS setting `index`; a real switch stalls the core for the
    /// configured transition latency.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSetting`] when `index` is out of range.
    pub fn set_dvfs(&mut self, index: usize) -> Result<(), InvalidSetting> {
        let stall_s = self.dvfs.request(index)?;
        if stall_s > 0.0 {
            self.stall(stall_s, self.pport_bits);
        }
        Ok(())
    }

    /// The current operating point.
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        self.dvfs.current()
    }

    /// The current DVFS setting index (0 = fastest).
    #[must_use]
    pub fn dvfs_index(&self) -> usize {
        self.dvfs.current_index()
    }

    /// Number of actual DVFS transitions performed so far.
    #[must_use]
    pub fn dvfs_transitions(&self) -> u64 {
        self.dvfs.transitions()
    }

    /// Re-arms the PMI to fire after `uops` further retired micro-ops —
    /// the knob an adaptive-sampling handler turns to skip re-evaluation
    /// through a predicted-long phase. Takes effect for the interval that
    /// is starting (call it right after a PMI).
    ///
    /// # Panics
    ///
    /// Panics if `uops` is zero.
    pub fn set_pmi_granularity(&mut self, uops: u64) {
        self.counters.rearm_overflow(uops);
    }

    /// Sets the parallel-port output bits (evaluation support, Section 5.4).
    pub fn set_pport_bits(&mut self, bits: u8) {
        self.pport_bits = bits;
    }

    /// Current parallel-port output bits.
    #[must_use]
    pub fn pport_bits(&self) -> u8 {
        self.pport_bits
    }

    /// Whole-run ground-truth totals.
    #[must_use]
    pub fn totals(&self) -> RunTotals {
        self.totals
    }

    /// The recorded power waveform (empty unless
    /// [`PlatformConfig::record_power_trace`] is set).
    #[must_use]
    pub fn power_trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Consumes the CPU, returning the recorded power waveform.
    #[must_use]
    pub fn into_power_trace(self) -> PowerTrace {
        self.trace
    }

    /// The platform configuration.
    #[must_use]
    pub fn config(&self) -> &'a PlatformConfig {
        self.config
    }

    /// Installs a saved vCPU context: the tenant's counter file becomes the
    /// live one and the interval time/energy marks are re-based so the
    /// tenant's previously accrued partial interval carries over exactly.
    ///
    /// The caller (the hypervisor) is responsible for having drained or
    /// saved any pending work belonging to the outgoing tenant first; work
    /// still queued on this CPU executes against the newly loaded counters.
    pub fn load_vcpu(&mut self, ctx: &VcpuContext) {
        self.counters = ctx.counters.clone();
        self.interval_start_time_s = self.totals.time_s - ctx.partial_time_s;
        self.interval_start_energy_j = self.totals.energy_j - ctx.partial_energy_j;
    }

    /// Saves the live counter state into `ctx`: the counter file plus the
    /// partial-interval time/energy accrued since the last PMI, ready to be
    /// re-installed later with [`load_vcpu`](Self::load_vcpu).
    pub fn store_vcpu(&self, ctx: &mut VcpuContext) {
        ctx.counters = self.counters.clone();
        ctx.partial_time_s = self.totals.time_s - self.interval_start_time_s;
        ctx.partial_energy_j = self.totals.energy_j - self.interval_start_energy_j;
    }

    /// Executes one chunk entirely at the current operating point.
    fn execute_chunk(&mut self, work: &IntervalWork) {
        let opp = self.dvfs.current();
        let exec = self.config.timing.execute(work, opp.frequency);
        // Counter features ride along for learned backends; the analytic
        // default reads only the core fraction, exactly as before.
        let input = PowerInput {
            core_fraction: exec.core_fraction(),
            mem_uop: if work.uops == 0 {
                0.0
            } else {
                work.mem_transactions as f64 / work.uops as f64
            },
            upc: if exec.cycles > 0.0 {
                work.uops as f64 / exec.cycles
            } else {
                0.0
            },
        };
        let power_w = self.config.power.power(opp, &input);
        let energy_j = power_w * exec.seconds;

        self.counters.record(&EventCounts {
            uops: work.uops,
            instructions: work.instructions,
            mem_transactions: work.mem_transactions,
            cycles: exec.cycles,
        });

        self.totals.time_s += exec.seconds;
        self.totals.energy_j += energy_j;
        self.totals.instructions += work.instructions;
        self.totals.uops += work.uops;
        self.totals.mem_transactions += work.mem_transactions;

        if self.config.record_power_trace {
            self.trace.push(PowerSegment {
                duration_s: exec.seconds,
                power_w,
                voltage_v: opp.voltage.volts(),
                pport_bits: self.pport_bits,
            });
        }
    }

    /// A non-retiring stall at the current operating point (handler
    /// execution, DVFS transition).
    fn stall(&mut self, seconds: f64, bits: u8) {
        let opp = self.dvfs.current();
        let power_w = self.config.power.stall_power(opp);
        self.counters
            .record_stall_cycles(seconds * opp.frequency.hz());
        self.totals.time_s += seconds;
        self.totals.energy_j += power_w * seconds;
        if self.config.record_power_trace {
            self.trace.push(PowerSegment {
                duration_s: seconds,
                power_w,
                voltage_v: opp.voltage.volts(),
                pport_bits: bits,
            });
        }
    }

    /// The handler protocol: stop, read, clear, restart — and re-base the
    /// per-interval time/energy marks.
    fn take_interval_record(&mut self) -> PmiRecord {
        self.counters.stop();
        let metrics = self.counters.read();
        let record = PmiRecord {
            metrics,
            timestamp_s: self.totals.time_s,
            interval_seconds: self.totals.time_s - self.interval_start_time_s,
            interval_energy_j: self.totals.energy_j - self.interval_start_energy_j,
            opp: self.dvfs.current(),
            dvfs_index: self.dvfs.current_index(),
        };
        self.counters.reset_interval();
        self.interval_start_time_s = self.totals.time_s;
        self.interval_start_energy_j = self.totals.energy_j;
        self.metrics.pmi_total.inc();
        let wall_s = self.wall_start.elapsed().as_secs_f64();
        if wall_s > 0.0 {
            self.metrics
                .sim_cycles_per_wall_second
                .set((self.counters.tsc() / wall_s) as i64);
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PlatformConfig {
        PlatformConfig {
            pmi_granularity_uops: 1_000_000,
            ..PlatformConfig::pentium_m()
        }
    }

    fn work(uops: u64, mem_per_kuop: u64) -> IntervalWork {
        IntervalWork::new(uops, uops * 4 / 5, uops / 1000 * mem_per_kuop, 0.7, 3.0)
    }

    #[test]
    fn pmi_fires_at_granularity() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.push_work(work(2_500_000, 10));
        let r1 = cpu.run_to_pmi().expect("first interval");
        assert_eq!(r1.metrics.uops_retired, 1_000_000);
        let r2 = cpu.run_to_pmi().expect("second interval");
        assert_eq!(r2.metrics.uops_retired, 1_000_000);
        assert!(cpu.run_to_pmi().is_none(), "only half an interval left");
        let tail = cpu.flush_partial_interval().expect("partial tail");
        assert_eq!(tail.metrics.uops_retired, 500_000);
        assert!(cpu.flush_partial_interval().is_none());
    }

    #[test]
    fn mem_uop_is_preserved_across_interval_splits() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.push_work(work(3_000_000, 20)); // Mem/Uop = 0.020
        while let Some(r) = cpu.run_to_pmi() {
            assert!((r.metrics.mem_uop().get() - 0.020).abs() < 1e-4);
        }
    }

    #[test]
    fn time_and_energy_accumulate() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.push_work(work(1_000_000, 10));
        let r = cpu.run_to_pmi().unwrap();
        assert!(r.interval_seconds > 0.0);
        assert!(r.interval_energy_j > 0.0);
        let t = cpu.totals();
        assert!((t.time_s - r.interval_seconds).abs() < 1e-12);
        assert!((t.energy_j - r.interval_energy_j).abs() < 1e-12);
        assert!(t.bips() > 0.0);
        assert!(t.average_power_w() > 1.0);
        assert!(t.edp() > 0.0);
    }

    #[test]
    fn slower_setting_reduces_power_and_stretches_time() {
        let run_at = |idx: usize| {
            let config = small_config();
            let mut cpu = Cpu::new(&config);
            cpu.set_dvfs(idx).unwrap();
            cpu.push_work(work(1_000_000, 10));
            let _ = cpu.run_to_pmi().unwrap();
            cpu.totals()
        };
        let fast = run_at(0);
        let slow = run_at(5);
        assert!(slow.time_s > fast.time_s);
        assert!(slow.average_power_w() < fast.average_power_w());
    }

    #[test]
    fn dvfs_switch_stalls_and_counts() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        let before = cpu.totals().time_s;
        cpu.set_dvfs(5).unwrap();
        assert_eq!(cpu.dvfs_transitions(), 1);
        assert!((cpu.totals().time_s - before - 50e-6).abs() < 1e-12);
        // Re-requesting the same setting is free.
        cpu.set_dvfs(5).unwrap();
        assert_eq!(cpu.dvfs_transitions(), 1);
        assert_eq!(cpu.dvfs_index(), 5);
    }

    #[test]
    fn invalid_dvfs_request_is_an_error() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        assert!(cpu.set_dvfs(17).is_err());
        assert_eq!(cpu.dvfs_index(), 0);
    }

    #[test]
    fn handler_overhead_is_charged() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.service_pmi_overhead(10e-6);
        assert!((cpu.totals().time_s - 10e-6).abs() < 1e-15);
        assert!(cpu.totals().energy_j > 0.0);
        assert_eq!(cpu.totals().uops, 0, "stalls retire nothing");
    }

    #[test]
    fn power_trace_records_segments_with_bits() {
        let config = small_config().with_power_trace();
        let mut cpu = Cpu::new(&config);
        cpu.set_pport_bits(crate::trace::pport::APP_RUNNING);
        cpu.push_work(work(1_000_000, 10));
        let _ = cpu.run_to_pmi().unwrap();
        cpu.service_pmi_overhead(10e-6);
        let trace = cpu.power_trace();
        assert!(trace.len() >= 2);
        assert!(trace
            .segments()
            .iter()
            .any(|s| s.pport_bits & crate::trace::pport::IN_HANDLER != 0));
        // The waveform's energy must agree with the ground truth.
        assert!((trace.total_energy_j() - cpu.totals().energy_j).abs() < 1e-9);
    }

    #[test]
    fn trace_disabled_by_default() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.push_work(work(1_000_000, 10));
        let _ = cpu.run_to_pmi().unwrap();
        assert!(cpu.power_trace().is_empty());
    }

    #[test]
    fn interval_seconds_include_stalls_inside_interval() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.push_work(work(500_000, 10));
        assert!(cpu.run_to_pmi().is_none());
        // Mid-interval DVFS switch: its stall belongs to this interval.
        cpu.set_dvfs(2).unwrap();
        cpu.push_work(work(500_000, 10));
        let r = cpu.run_to_pmi().unwrap();
        let pure: f64 = r.interval_seconds;
        assert!(pure > 0.0);
        assert!(r.metrics.cycles > 0);
    }

    #[test]
    fn pmi_granularity_is_retunable_between_intervals() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        cpu.push_work(work(4_000_000, 10));
        let r1 = cpu.run_to_pmi().unwrap();
        assert_eq!(r1.metrics.uops_retired, 1_000_000);
        // Stretch the next window to 3 M uops.
        cpu.set_pmi_granularity(3_000_000);
        let r2 = cpu.run_to_pmi().unwrap();
        assert_eq!(r2.metrics.uops_retired, 3_000_000);
        // All 4 M uops are accounted for; nothing dangles.
        assert!(cpu.run_to_pmi().is_none());
        assert!(cpu.flush_partial_interval().is_none());
        // The re-armed window persists until re-armed again (the handler
        // re-arms every PMI anyway).
        cpu.push_work(work(3_000_000, 10));
        let r3 = cpu.run_to_pmi().unwrap();
        assert_eq!(r3.metrics.uops_retired, 3_000_000);
    }

    #[test]
    fn vcpu_switch_preserves_partial_interval() {
        let config = small_config();
        let mut cpu = Cpu::new(&config);
        let mut a = VcpuContext::new(config.pmi_granularity_uops);
        let mut b = VcpuContext::new(config.pmi_granularity_uops);

        // Tenant A runs 600 k of its 1 M-uop interval, then is descheduled.
        cpu.load_vcpu(&a);
        cpu.push_work(work(600_000, 10));
        assert!(cpu.run_to_pmi().is_none());
        cpu.store_vcpu(&mut a);
        assert!(a.partial_time_s() > 0.0);
        assert!(a.partial_energy_j() > 0.0);

        // Tenant B runs a full interval in between; its PMI sees only B.
        cpu.load_vcpu(&b);
        cpu.push_work(work(1_000_000, 40));
        let rb = cpu.run_to_pmi().expect("B's interval");
        assert_eq!(rb.metrics.uops_retired, 1_000_000);
        assert_eq!(rb.metrics.mem_transactions, 40_000);
        cpu.store_vcpu(&mut b);
        assert_eq!(b.partial_time_s(), 0.0, "B ended exactly on a PMI");

        // A resumes and completes its interval: exactly 1 M uops, with
        // A's memory counts only, and a duration that excludes B's time.
        cpu.load_vcpu(&a);
        cpu.push_work(work(400_000, 10));
        let ra = cpu.run_to_pmi().expect("A's interval");
        assert_eq!(ra.metrics.uops_retired, 1_000_000);
        assert_eq!(ra.metrics.mem_transactions, 10_000);
        // A's interval duration = its saved partial plus the resumed slice;
        // B's full interval in between contributes nothing.
        let resumed_slice_s = ra.timestamp_s - rb.timestamp_s;
        assert!(
            (ra.interval_seconds - (a.partial_time_s() + resumed_slice_s)).abs() < 1e-12,
            "A's interval must not absorb B's execution time"
        );
    }

    #[test]
    fn vcpu_counters_match_solo_run_bit_for_bit() {
        let config = small_config();

        // Solo: tenant runs 2.5 M uops alone on its own CPU.
        let mut solo = Cpu::new(&config);
        solo.push_work(work(2_500_000, 10));
        let mut solo_records = Vec::new();
        while let Some(r) = solo.run_to_pmi() {
            solo_records.push(r.metrics);
        }

        // Multiplexed: the same work sliced into 500 k quanta, with a
        // noisy neighbor interleaved between every quantum.
        let mut cpu = Cpu::new(&config);
        let mut tenant = VcpuContext::new(config.pmi_granularity_uops);
        let mut noisy = VcpuContext::new(config.pmi_granularity_uops);
        let mut muxed_records = Vec::new();
        for _ in 0..5 {
            cpu.load_vcpu(&tenant);
            cpu.push_work(work(500_000, 10));
            while let Some(r) = cpu.run_to_pmi() {
                muxed_records.push(r.metrics);
            }
            cpu.store_vcpu(&mut tenant);

            cpu.load_vcpu(&noisy);
            cpu.push_work(work(300_000, 90));
            while cpu.run_to_pmi().is_some() {}
            cpu.store_vcpu(&mut noisy);
        }
        assert_eq!(solo_records, muxed_records);
    }

    #[test]
    fn run_totals_empty_run() {
        let t = RunTotals::default();
        assert_eq!(t.bips(), 0.0);
        assert_eq!(t.average_power_w(), 0.0);
        assert_eq!(t.edp(), 0.0);
    }
}
