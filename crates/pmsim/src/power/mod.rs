//! The CPU power-model zoo: one trait, three backends.
//!
//! Every consumer of package power — the simulator's energy accounting,
//! the governor's [`PowerEstimator`](../../livephase_governor), the
//! tenants arbiter's worst-case grant costing — goes through the
//! [`PowerModel`] trait:
//!
//! * [`AnalyticModel`] — the paper's `k_dyn·a·V²·f + k_leak·V³` formula,
//!   calibrated to the Pentium-M package envelope. The default backend;
//!   bit-identical to the pre-trait concrete model, so every committed
//!   decision digest is unchanged.
//! * [`LinearModel`] — least-squares fit of per-interval PMC features
//!   (Mem/Uop, UPC) plus the opp's `V²f`/`V³` basis against DAQ-measured
//!   watts, after the counter-regression recipe of the related
//!   data-driven power-modeling work.
//! * [`TreeModel`] — a non-negative `V²f`/`V³` affine term plus a small
//!   deterministic regression tree over the counter features: fixed
//!   split order, no RNG anywhere, cheap enough for the per-PMI path.
//!
//! ## The worst-case-bound invariant
//!
//! The tenants arbiter proves "granted settings can never exceed the
//! cluster budget" by summing per-core maxima. That proof must survive a
//! model swap, so the trait carries [`PowerModel::worst_case`] with the
//! contract: **for every counter input `c`, `power(opp, c) <=
//! worst_case(opp)`**, and both are monotonically non-increasing along
//! the platform's operating-point table (fastest first). The learned
//! backends make this structural rather than empirical: their
//! operating-point basis weights are clamped non-negative at fit time
//! and their counter features are clamped into fixed boxes at inference
//! time, so the bound holds for *all* inputs, not just training-like
//! ones. A property test generates counter vectors against every
//! backend to keep the contract honest.

mod analytic;
mod linear;
mod tree;

pub use analytic::AnalyticModel;
pub use linear::LinearModel;
pub use tree::TreeModel;

use crate::opp::OperatingPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Upper clamp on the Mem/Uop feature at inference time. The workload
/// registry tops out near 0.04 memory transactions per uop; double that
/// bounds the feature box without flattening real inputs.
pub const MEM_UOP_MAX: f64 = 0.08;

/// Upper clamp on the UPC feature at inference time. A P6-style core
/// retires well under 8 uops per cycle.
pub const UPC_MAX: f64 = 8.0;

/// Per-interval observable inputs to a power model.
///
/// `core_fraction` is the timing model's ground truth (only available
/// in simulation); `mem_uop` and `upc` are what real performance
/// counters expose. The analytic backend reads only `core_fraction`;
/// the learned backends read only the counter features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerInput {
    /// Fraction of wall time in core (non-memory-stall) work, in `[0, 1]`.
    pub core_fraction: f64,
    /// Memory bus transactions per retired uop.
    pub mem_uop: f64,
    /// Uops retired per core cycle.
    pub upc: f64,
}

impl PowerInput {
    /// An input with every field given explicitly.
    #[must_use]
    pub fn new(core_fraction: f64, mem_uop: f64, upc: f64) -> Self {
        Self {
            core_fraction,
            mem_uop,
            upc,
        }
    }

    /// An input known only by its core fraction (counter features zero).
    #[must_use]
    pub fn from_core_fraction(core_fraction: f64) -> Self {
        Self {
            core_fraction,
            mem_uop: 0.0,
            upc: 0.0,
        }
    }

    /// An input observed through performance counters alone. The core
    /// fraction is not counter-observable, so it pins to `1.0` — the
    /// worst case for the analytic backend, keeping bound-style
    /// consumers safe.
    #[must_use]
    pub fn from_counters(mem_uop: f64, upc: f64) -> Self {
        Self {
            core_fraction: 1.0,
            mem_uop,
            upc,
        }
    }

    /// The fully stalled input (DVFS transitions, handler overhead):
    /// nothing retires, the core burns residual clock activity only.
    #[must_use]
    pub fn stalled() -> Self {
        Self {
            core_fraction: 0.0,
            mem_uop: 0.0,
            upc: 0.0,
        }
    }
}

/// A package power model: watts as a function of the operating point and
/// the interval's observable behaviour.
///
/// Implementations must be deterministic pure functions and must uphold
/// the worst-case-bound invariant described in the module docs.
pub trait PowerModel {
    /// Package power (watts) at `opp` for an interval behaving like
    /// `input`.
    fn power(&self, opp: OperatingPoint, input: &PowerInput) -> f64;

    /// An upper bound on [`power`](Self::power) over *every* possible
    /// `input` at `opp`. Grant costing in the tenants arbiter prices
    /// settings off this bound, so it must dominate the backend's output
    /// for all inputs, not just plausible ones.
    fn worst_case(&self, opp: OperatingPoint) -> f64;

    /// Power while fully stalled (e.g. during a DVFS transition when no
    /// instructions retire).
    fn stall_power(&self, opp: OperatingPoint) -> f64 {
        self.power(opp, &PowerInput::stalled())
    }

    /// Short stable backend name (`analytic`, `linear`, `tree`).
    fn name(&self) -> &'static str;
}

/// One `(operating point, observed features, measured watts)` training
/// example, as produced by `daq::DaqLog::training_records`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingRecord {
    /// Operating point the interval ran at.
    pub opp: OperatingPoint,
    /// The interval's observable features.
    pub input: PowerInput,
    /// DAQ-measured average package power over the interval, watts.
    pub measured_w: f64,
}

/// Why a model fit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer training records than free parameters.
    TooFewRecords {
        /// Minimum records the backend needs.
        needed: usize,
        /// Records actually supplied.
        got: usize,
    },
    /// A record carried a non-finite feature or measurement.
    NonFinite,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewRecords { needed, got } => {
                write!(f, "need at least {needed} training records, got {got}")
            }
            Self::NonFinite => write!(f, "training records contain non-finite values"),
        }
    }
}

impl std::error::Error for FitError {}

/// A concrete, owned backend choice — enum dispatch keeps the per-PMI
/// hot path free of vtable indirection and lets [`PlatformConfig`]
/// (`crate::cpu::PlatformConfig`) stay `Clone + PartialEq`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerModelKind {
    /// The analytic `CV²f + leakage` formula (the default).
    Analytic(AnalyticModel),
    /// A fitted least-squares counter-regression model.
    Linear(LinearModel),
    /// A fitted regression-tree model.
    Tree(TreeModel),
}

impl PowerModelKind {
    /// The backend's stable name without consulting the trait object.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::Analytic(m) => m.name(),
            Self::Linear(m) => m.name(),
            Self::Tree(m) => m.name(),
        }
    }
}

impl Default for PowerModelKind {
    fn default() -> Self {
        Self::Analytic(AnalyticModel::pentium_m())
    }
}

impl PowerModel for PowerModelKind {
    fn power(&self, opp: OperatingPoint, input: &PowerInput) -> f64 {
        match self {
            Self::Analytic(m) => m.power(opp, input),
            Self::Linear(m) => m.power(opp, input),
            Self::Tree(m) => m.power(opp, input),
        }
    }

    fn worst_case(&self, opp: OperatingPoint) -> f64 {
        match self {
            Self::Analytic(m) => m.worst_case(opp),
            Self::Linear(m) => m.worst_case(opp),
            Self::Tree(m) => m.worst_case(opp),
        }
    }

    fn stall_power(&self, opp: OperatingPoint) -> f64 {
        match self {
            Self::Analytic(m) => m.stall_power(opp),
            Self::Linear(m) => m.stall_power(opp),
            Self::Tree(m) => m.stall_power(opp),
        }
    }

    fn name(&self) -> &'static str {
        self.kind_name()
    }
}

/// The `V²·f` (GHz) dynamic-power basis term shared by the learned
/// backends.
#[must_use]
pub(crate) fn v2f(opp: OperatingPoint) -> f64 {
    let v = opp.voltage.volts();
    v * v * opp.frequency.ghz()
}

/// The `V³` leakage basis term shared by the learned backends.
#[must_use]
pub(crate) fn v3(opp: OperatingPoint) -> f64 {
    let v = opp.voltage.volts();
    v * v * v
}

/// Validates that every record is finite and that there are at least
/// `needed` of them.
pub(crate) fn validate_records(records: &[TrainingRecord], needed: usize) -> Result<(), FitError> {
    if records.len() < needed {
        return Err(FitError::TooFewRecords {
            needed,
            got: records.len(),
        });
    }
    let finite = records.iter().all(|r| {
        r.measured_w.is_finite()
            && r.input.mem_uop.is_finite()
            && r.input.upc.is_finite()
            && r.input.core_fraction.is_finite()
    });
    if finite {
        Ok(())
    } else {
        Err(FitError::NonFinite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opp::OperatingPointTable;

    pub(crate) fn synthetic_records(seed: u64) -> Vec<TrainingRecord> {
        // Analytic ground truth plus a deterministic feature sweep: the
        // learned backends should be able to recover the envelope.
        let truth = AnalyticModel::pentium_m();
        let table = OperatingPointTable::pentium_m();
        let mut out = Vec::new();
        let mut state = seed.max(1);
        for (_, opp) in table.iter() {
            for k in 0..8u64 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let jitter = (state >> 40) as f64 / (1u64 << 24) as f64; // [0,1)
                let cf = 0.2 + 0.1 * k as f64;
                let input = PowerInput::new(cf, 0.04 * (1.0 - cf), 1.0 + 2.0 * cf);
                let measured = truth.power(opp, &input) * (0.99 + 0.02 * jitter);
                out.push(TrainingRecord {
                    opp,
                    input,
                    measured_w: measured,
                });
            }
        }
        out
    }

    #[test]
    fn default_kind_is_the_analytic_calibration() {
        let kind = PowerModelKind::default();
        assert_eq!(kind.kind_name(), "analytic");
        let table = OperatingPointTable::pentium_m();
        let direct = AnalyticModel::pentium_m();
        let input = PowerInput::from_core_fraction(0.7);
        for (_, opp) in table.iter() {
            assert_eq!(kind.power(opp, &input), direct.power(opp, &input));
            assert_eq!(kind.worst_case(opp), direct.worst_case(opp));
            assert_eq!(kind.stall_power(opp), direct.stall_power(opp));
        }
    }

    #[test]
    fn enum_dispatch_matches_direct_calls_for_learned_backends() {
        let records = synthetic_records(7);
        let linear = LinearModel::fit(&records).unwrap();
        let tree = TreeModel::fit(&records).unwrap();
        let opp = OperatingPointTable::pentium_m().fastest();
        let input = PowerInput::from_counters(0.01, 1.5);
        assert_eq!(
            PowerModelKind::Linear(linear.clone()).power(opp, &input),
            linear.power(opp, &input)
        );
        assert_eq!(
            PowerModelKind::Tree(tree.clone()).power(opp, &input),
            tree.power(opp, &input)
        );
        assert_eq!(PowerModelKind::Linear(linear).kind_name(), "linear");
        assert_eq!(PowerModelKind::Tree(tree).kind_name(), "tree");
    }

    #[test]
    fn fit_errors_render() {
        let few = validate_records(&[], 5).unwrap_err();
        assert!(few.to_string().contains("at least 5"));
        let mut records = synthetic_records(1);
        records[0].measured_w = f64::NAN;
        assert_eq!(
            validate_records(&records, 5).unwrap_err(),
            FitError::NonFinite
        );
    }
}
