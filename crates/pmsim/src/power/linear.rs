//! The counter-regression backend: least squares over PMC features.
//!
//! Following the counter-driven power-modeling recipe from the related
//! work, per-interval power is regressed onto a physical basis plus the
//! two DVFS-invariant-friendly counter features the paper's handler
//! already reads:
//!
//! ```text
//! P ≈ w₀ + w₁·V²f + w₂·V³ + w₃·(Mem/Uop) + w₄·UPC
//! ```
//!
//! The fit is closed-form (normal equations with a tiny ridge term and
//! partial-pivot Gaussian elimination), so the same training records
//! always produce the same coefficients — a golden test pins this.
//!
//! Two structural guarantees make the fitted model safe for bounding
//! consumers (see the module docs of [`super`]):
//!
//! * the operating-point basis weights `w₁`, `w₂` are clamped
//!   non-negative by an active-set refit, so power is monotonically
//!   non-increasing along the platform table;
//! * counter features are clamped into fixed boxes (`[0, MEM_UOP_MAX]`,
//!   `[0, UPC_MAX]`) at both fit and inference time, so
//!   [`worst_case`](super::PowerModel::worst_case) can dominate the
//!   output over *all* inputs by taking each weight's box extreme.

use super::{
    v2f, v3, validate_records, FitError, PowerInput, PowerModel, TrainingRecord, MEM_UOP_MAX,
    UPC_MAX,
};
use crate::opp::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Number of regression weights: bias, V²f, V³, Mem/Uop, UPC.
const N: usize = 5;
/// Ridge added to the normal-equation diagonal: keeps the system
/// non-singular on degenerate training sets without visibly biasing a
/// well-conditioned fit.
const RIDGE: f64 = 1e-9;
/// Indices of the operating-point basis weights that must stay
/// non-negative for the monotonicity/bound guarantees.
const OPP_WEIGHTS: [usize; 2] = [1, 2];
/// Fewest records a fit accepts (one more than the parameter count).
const MIN_RECORDS: usize = N + 1;

/// A fitted least-squares power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// `[bias, w_v2f, w_v3, w_mem_uop, w_upc]`.
    weights: [f64; N],
}

/// The regression feature vector for one observation.
fn features(opp: OperatingPoint, input: &PowerInput) -> [f64; N] {
    [
        1.0,
        v2f(opp),
        v3(opp),
        input.mem_uop.clamp(0.0, MEM_UOP_MAX),
        input.upc.clamp(0.0, UPC_MAX),
    ]
}

/// Bounds-checked read of the augmented matrix (out of range reads 0,
/// which the solver never relies on: every access is within `N`).
fn at(a: &[[f64; N + 1]; N], r: usize, c: usize) -> f64 {
    a.get(r).and_then(|row| row.get(c)).copied().unwrap_or(0.0)
}

/// Bounds-checked write of the augmented matrix.
fn set(a: &mut [[f64; N + 1]; N], r: usize, c: usize, value: f64) {
    if let Some(cell) = a.get_mut(r).and_then(|row| row.get_mut(c)) {
        *cell = value;
    }
}

/// Bounds-checked in-place add on the augmented matrix.
fn add(a: &mut [[f64; N + 1]; N], r: usize, c: usize, delta: f64) {
    if let Some(cell) = a.get_mut(r).and_then(|row| row.get_mut(c)) {
        *cell += delta;
    }
}

/// Solves the augmented system `[A | b]` by Gauss-Jordan elimination
/// with partial pivoting. Deterministic: pivot choice uses
/// `f64::total_cmp`, and the ridge term guarantees well-posedness.
fn solve(mut a: [[f64; N + 1]; N]) -> [f64; N] {
    for col in 0..N {
        let pivot = (col..N)
            .max_by(|&i, &j| at(&a, i, col).abs().total_cmp(&at(&a, j, col).abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        let p = at(&a, col, col);
        if p.abs() < 1e-15 {
            continue;
        }
        for row in 0..N {
            if row == col {
                continue;
            }
            let factor = at(&a, row, col) / p;
            for c in col..=N {
                let updated = at(&a, row, c) - factor * at(&a, col, c);
                set(&mut a, row, c, updated);
            }
        }
    }
    let mut w = [0.0; N];
    for (i, slot) in w.iter_mut().enumerate() {
        let p = at(&a, i, i);
        *slot = if p.abs() < 1e-15 {
            0.0
        } else {
            at(&a, i, N) / p
        };
    }
    w
}

/// Builds and solves the (ridged) normal equations, forcing weights in
/// `pinned` to zero by replacing their row/column with the identity.
fn fit_masked(records: &[TrainingRecord], pinned: &[usize]) -> [f64; N] {
    let mut a = [[0.0; N + 1]; N];
    for rec in records {
        let phi = features(rec.opp, &rec.input);
        for (r, &pr) in phi.iter().enumerate() {
            for (c, &pc) in phi.iter().enumerate() {
                add(&mut a, r, c, pr * pc);
            }
            add(&mut a, r, N, pr * rec.measured_w);
        }
    }
    for d in 0..N {
        add(&mut a, d, d, RIDGE);
    }
    for &p in pinned {
        for k in 0..=N {
            set(&mut a, p, k, 0.0);
            if k < N {
                set(&mut a, k, p, 0.0);
            }
        }
        set(&mut a, p, p, 1.0);
    }
    solve(a)
}

impl LinearModel {
    /// Fits the model to DAQ training records.
    ///
    /// Deterministic: the same records in the same order produce
    /// bit-identical weights. If the unconstrained solution assigns a
    /// negative weight to an operating-point basis term, that weight is
    /// pinned to zero and the rest refit (classic active-set descent —
    /// at most two refits for two constrained weights).
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewRecords`] below six records and
    /// [`FitError::NonFinite`] when any record carries a NaN/∞.
    pub fn fit(records: &[TrainingRecord]) -> Result<Self, FitError> {
        validate_records(records, MIN_RECORDS)?;
        let mut pinned: Vec<usize> = Vec::new();
        let mut weights = fit_masked(records, &pinned);
        loop {
            let newly_negative: Vec<usize> = OPP_WEIGHTS
                .iter()
                .copied()
                .filter(|&i| !pinned.contains(&i) && weights.get(i).copied().unwrap_or(0.0) < 0.0)
                .collect();
            if newly_negative.is_empty() {
                break;
            }
            pinned.extend(newly_negative);
            weights = fit_masked(records, &pinned);
        }
        for &i in &OPP_WEIGHTS {
            if let Some(w) = weights.get_mut(i) {
                *w = w.max(0.0);
            }
        }
        Ok(Self { weights })
    }

    /// The fitted `[bias, w_v2f, w_v3, w_mem_uop, w_upc]` coefficients.
    #[must_use]
    pub fn weights(&self) -> [f64; N] {
        self.weights
    }
}

impl PowerModel for LinearModel {
    fn power(&self, opp: OperatingPoint, input: &PowerInput) -> f64 {
        let phi = features(opp, input);
        let raw: f64 = self
            .weights
            .iter()
            .zip(phi.iter())
            .map(|(w, p)| w * p)
            .sum();
        raw.max(0.0)
    }

    /// Bias plus the (non-negative) opp terms plus each counter weight's
    /// box extreme: `w·x ≤ max(0, w)·x_max` for `x ∈ [0, x_max]`, and
    /// `max(0, ·)` preserves the ordering, so this dominates
    /// [`power`](Self::power) for every input.
    fn worst_case(&self, opp: OperatingPoint) -> f64 {
        let [w0, w1, w2, w3, w4] = self.weights;
        let raw =
            w0 + w1 * v2f(opp) + w2 * v3(opp) + w3.max(0.0) * MEM_UOP_MAX + w4.max(0.0) * UPC_MAX;
        raw.max(0.0)
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic_records;
    use super::*;
    use crate::opp::OperatingPointTable;

    #[test]
    fn fit_is_deterministic() {
        let records = synthetic_records(42);
        let a = LinearModel::fit(&records).unwrap();
        let b = LinearModel::fit(&records).unwrap();
        assert_eq!(a.weights(), b.weights(), "same records, same coefficients");
    }

    #[test]
    fn fit_recovers_the_analytic_envelope() {
        let records = synthetic_records(42);
        let m = LinearModel::fit(&records).unwrap();
        let mut abs_err = 0.0;
        for r in &records {
            abs_err += (m.power(r.opp, &r.input) - r.measured_w).abs();
        }
        let mae = abs_err / records.len() as f64;
        assert!(mae < 0.5, "fit should track the envelope, MAE {mae}");
    }

    #[test]
    fn opp_weights_are_non_negative() {
        // Adversarial records that reward a negative V³ weight: the
        // active-set refit must pin it rather than emit it.
        let mut records = synthetic_records(3);
        for (k, r) in records.iter_mut().enumerate() {
            if k % 2 == 0 {
                r.measured_w = 0.1;
            }
        }
        let m = LinearModel::fit(&records).unwrap();
        let [_, w1, w2, _, _] = m.weights();
        assert!(w1 >= 0.0 && w2 >= 0.0, "opp weights clamped: {w1} {w2}");
    }

    #[test]
    fn worst_case_bounds_power() {
        let records = synthetic_records(9);
        let m = LinearModel::fit(&records).unwrap();
        let t = OperatingPointTable::pentium_m();
        for (_, opp) in t.iter() {
            for mu in [0.0, 0.01, MEM_UOP_MAX, 10.0] {
                for upc in [0.0, 1.0, UPC_MAX, 100.0] {
                    let p = m.power(opp, &PowerInput::from_counters(mu, upc));
                    assert!(p <= m.worst_case(opp) + 1e-12, "{mu} {upc}");
                }
            }
        }
    }

    #[test]
    fn rejects_degenerate_training_sets() {
        let records = synthetic_records(1);
        assert!(matches!(
            LinearModel::fit(&records[..3]),
            Err(FitError::TooFewRecords { .. })
        ));
        let mut bad = records.clone();
        bad[0].input.upc = f64::INFINITY;
        assert!(matches!(LinearModel::fit(&bad), Err(FitError::NonFinite)));
    }

    #[test]
    fn output_is_clamped_non_negative() {
        let m = LinearModel {
            weights: [-5.0, 0.0, 0.0, 0.0, 0.0],
        };
        let opp = OperatingPointTable::pentium_m().fastest();
        assert_eq!(m.power(opp, &PowerInput::stalled()), 0.0);
        assert_eq!(m.worst_case(opp), 0.0);
    }
}
