//! The analytical backend: switching power plus leakage.
//!
//! Package power is modeled as:
//!
//! ```text
//! P(f, V, a) = k_dyn · a · V² · f  +  k_leak · V³
//! ```
//!
//! Leakage scales superlinearly with supply voltage (subthreshold current
//! grows steeply with `V`), which is what makes deep DVFS settings pay off
//! on real silicon — the paper measures > 60 % EDP gains on its most
//! memory-bound workloads, only possible when the low-voltage settings
//! shed leakage as well as switching power.
//!
//! The *activity factor* `a` blends full-rate switching during core work
//! with residual clock/queue activity during memory stalls:
//!
//! ```text
//! a = core_fraction + stall_activity · (1 − core_fraction)
//! ```
//!
//! The default calibration targets the power envelope measured by the
//! paper's DAQ rig (Figure 10): ≈ 13 W running CPU-bound code at
//! 1.5 GHz / 1.484 V and ≈ 3 W at 600 MHz / 0.956 V.

use super::{PowerInput, PowerModel};
use crate::opp::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Coefficients of the analytical power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// Effective switching capacitance coefficient, in watts per V²·GHz at
    /// activity 1.
    pub k_dyn: f64,
    /// Residual activity during memory stalls, in `[0, 1]`. The Pentium-M
    /// keeps clocks running while stalled, so this is well above zero.
    pub stall_activity: f64,
    /// Leakage coefficient in watts per volt cubed.
    pub k_leak: f64,
}

impl AnalyticModel {
    /// Calibration for the paper's Pentium-M prototype: 13 W fully active at
    /// the top operating point, ≈ 3 W at the bottom.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            k_dyn: 3.33,
            stall_activity: 0.35,
            k_leak: 0.60,
        }
    }

    /// Package power at `opp` with the given fraction of time in core
    /// (non-stall) work. (Named `activity_power` rather than `power` so
    /// the inherent method cannot shadow the trait method, whose input
    /// type differs.)
    ///
    /// # Panics
    ///
    /// Panics if `core_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn activity_power(&self, opp: OperatingPoint, core_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&core_fraction),
            "core fraction must be in [0,1], got {core_fraction}"
        );
        let a = core_fraction + self.stall_activity * (1.0 - core_fraction);
        let v = opp.voltage.volts();
        self.k_dyn * a * v * v * opp.frequency.ghz() + self.k_leak * v * v * v
    }

    /// Energy of an execution slice: `power · seconds`.
    #[must_use]
    pub fn energy(&self, opp: OperatingPoint, core_fraction: f64, seconds: f64) -> f64 {
        self.activity_power(opp, core_fraction) * seconds
    }
}

impl PowerModel for AnalyticModel {
    /// Reads only `input.core_fraction` — bit-identical to the pre-trait
    /// concrete model, which is what keeps every committed decision
    /// digest unchanged under the default backend.
    fn power(&self, opp: OperatingPoint, input: &PowerInput) -> f64 {
        self.activity_power(opp, input.core_fraction)
    }

    /// The formula is linear and increasing in the activity factor, so
    /// the bound is full activity — exactly the arbiter's historical
    /// `P(opp, core_fraction = 1)` grant cost.
    fn worst_case(&self, opp: OperatingPoint) -> f64 {
        self.activity_power(opp, 1.0)
    }

    fn name(&self) -> &'static str {
        "analytic"
    }
}

impl Default for AnalyticModel {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opp::OperatingPointTable;

    #[test]
    fn calibration_envelope() {
        let m = AnalyticModel::pentium_m();
        let t = OperatingPointTable::pentium_m();
        let top = m.activity_power(t.fastest(), 1.0);
        let bottom = m.activity_power(t.slowest(), 1.0);
        assert!(
            (12.0..15.0).contains(&top),
            "top-point active power should be ~13 W, got {top}"
        );
        assert!(
            (2.0..4.5).contains(&bottom),
            "bottom-point active power should be ~2-3 W, got {bottom}"
        );
    }

    #[test]
    fn power_is_monotonic_in_operating_point() {
        let m = AnalyticModel::pentium_m();
        let t = OperatingPointTable::pentium_m();
        let powers: Vec<f64> = t.iter().map(|(_, p)| m.activity_power(p, 0.7)).collect();
        for w in powers.windows(2) {
            assert!(w[0] > w[1], "power must fall with the operating point");
        }
    }

    #[test]
    fn stalls_burn_less_than_active_work() {
        let m = AnalyticModel::pentium_m();
        let p = OperatingPointTable::pentium_m().fastest();
        assert!(m.stall_power(p) < m.activity_power(p, 1.0));
        assert!(m.stall_power(p) > 0.0, "clocks keep running while stalled");
    }

    #[test]
    fn activity_blends_linearly() {
        let m = AnalyticModel::pentium_m();
        let p = OperatingPointTable::pentium_m().fastest();
        let half = m.activity_power(p, 0.5);
        let mid = f64::midpoint(m.activity_power(p, 0.0), m.activity_power(p, 1.0));
        assert!((half - mid).abs() < 1e-9);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = AnalyticModel::pentium_m();
        let p = OperatingPointTable::pentium_m().fastest();
        let e = m.energy(p, 1.0, 0.1);
        assert!((e - m.activity_power(p, 1.0) * 0.1).abs() < 1e-12);
    }

    #[test]
    fn trait_power_reads_the_core_fraction_bit_identically() {
        let m = AnalyticModel::pentium_m();
        let t = OperatingPointTable::pentium_m();
        for (_, p) in t.iter() {
            for cf in [0.0, 0.25, 0.5, 0.7, 1.0] {
                // Counter features must not perturb the analytic output.
                let input = PowerInput::new(cf, 0.03, 2.0);
                assert_eq!(m.power(p, &input), m.activity_power(p, cf));
            }
            assert_eq!(m.worst_case(p), m.activity_power(p, 1.0));
            assert_eq!(m.stall_power(p), m.activity_power(p, 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "core fraction")]
    fn rejects_bad_fraction() {
        let m = AnalyticModel::pentium_m();
        let p = OperatingPointTable::pentium_m().fastest();
        let _ = m.activity_power(p, 1.5);
    }
}
