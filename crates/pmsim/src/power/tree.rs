//! The regression-tree backend: a physical basis plus a counter tree.
//!
//! Following the decision-tree power-monitoring recipe from the related
//! work, the model splits power into an operating-point part and a
//! workload part:
//!
//! ```text
//! P ≈ w_dyn·V²f + w_leak·V³ + tree(Mem/Uop, UPC)
//! ```
//!
//! The affine `V²f`/`V³` part is fit first (closed form, weights
//! clamped non-negative), then a small regression tree is grown over
//! the *residuals* using only the counter features. Everything about
//! the tree is deterministic: features are tried in a fixed order,
//! candidate thresholds are midpoints of sorted (by `f64::total_cmp`)
//! adjacent values, ties keep the first candidate, and inference is a
//! handful of compares — cheap enough for the per-PMI hot path.
//!
//! Because the tree term does not depend on the operating point, the
//! model is monotone along the platform table whenever the affine
//! weights are non-negative (which the fit guarantees), and
//! [`worst_case`](super::PowerModel::worst_case) is simply the affine
//! part plus the largest leaf.

use super::{v2f, v3, validate_records, FitError, PowerInput, PowerModel, TrainingRecord};
use super::{MEM_UOP_MAX, UPC_MAX};
use crate::opp::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Maximum tree depth (root = depth `MAX_DEPTH`, leaves at 0).
const MAX_DEPTH: usize = 3;
/// Fewest samples a leaf may hold after a split.
const MIN_LEAF: usize = 4;
/// Fewest records a fit accepts.
const MIN_RECORDS: usize = 8;
/// Required SSE improvement before a split is worth a node.
const MIN_GAIN: f64 = 1e-12;

/// One tree node. Children are built before their parent, so every
/// child index is strictly smaller than its parent's — inference walks
/// strictly downward and always terminates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Internal split: `feature` 0 is Mem/Uop, 1 is UPC; inputs with
    /// `value <= threshold` descend left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Terminal residual value (watts).
    Leaf { value: f64 },
}

/// A fitted regression-tree power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeModel {
    /// Non-negative `V²f` coefficient.
    w_dyn: f64,
    /// Non-negative `V³` coefficient.
    w_leak: f64,
    /// Flattened tree; `root` is always the last node.
    nodes: Vec<Node>,
    /// Index of the root node.
    root: usize,
    /// Largest leaf value — the counter part of the worst-case bound.
    max_leaf: f64,
}

/// One training point projected for tree growth: clamped counter
/// features plus the affine-fit residual.
#[derive(Clone, Copy)]
struct Point {
    mem_uop: f64,
    upc: f64,
    residual: f64,
}

impl Point {
    fn feature(&self, which: usize) -> f64 {
        if which == 0 {
            self.mem_uop
        } else {
            self.upc
        }
    }
}

/// Fits `y ≈ w_dyn·v2f + w_leak·v3` with both weights clamped
/// non-negative (2×2 normal equations, single-variable refit when a
/// weight pins to zero).
fn fit_affine(records: &[TrainingRecord]) -> (f64, f64) {
    let (mut s11, mut s12, mut s22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for r in records {
        let (x1, x2) = (v2f(r.opp), v3(r.opp));
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        b1 += x1 * r.measured_w;
        b2 += x2 * r.measured_w;
    }
    let single = |sxx: f64, bx: f64| {
        if sxx > 1e-15 {
            (bx / sxx).max(0.0)
        } else {
            0.0
        }
    };
    let det = s11 * s22 - s12 * s12;
    if det.abs() < 1e-12 {
        return (single(s11, b1), 0.0);
    }
    let w_dyn = (b1 * s22 - b2 * s12) / det;
    let w_leak = (b2 * s11 - b1 * s12) / det;
    if w_dyn < 0.0 {
        (0.0, single(s22, b2))
    } else if w_leak < 0.0 {
        (single(s11, b1), 0.0)
    } else {
        (w_dyn, w_leak)
    }
}

/// The best split of `points` (already whole, unsorted) on one feature:
/// `(sse, threshold)` minimizing left+right squared error, or `None`
/// when no admissible boundary exists.
fn best_split_on(points: &mut [Point], feature: usize) -> Option<(f64, f64)> {
    points.sort_by(|a, b| a.feature(feature).total_cmp(&b.feature(feature)));
    let n = points.len();
    let total_sum: f64 = points.iter().map(|p| p.residual).sum();
    let total_sq: f64 = points.iter().map(|p| p.residual * p.residual).sum();
    let (mut left_sum, mut left_sq) = (0.0, 0.0);
    let mut best: Option<(f64, f64)> = None;
    for (k, pair) in points.windows(2).enumerate() {
        let [a, b] = pair else { break };
        left_sum += a.residual;
        left_sq += a.residual * a.residual;
        let n_left = k + 1;
        let n_right = n - n_left;
        if n_left < MIN_LEAF || n_right < MIN_LEAF {
            continue;
        }
        let (va, vb) = (a.feature(feature), b.feature(feature));
        if va == vb {
            continue; // no boundary between equal values
        }
        let sse_left = left_sq - left_sum * left_sum / n_left as f64;
        let right_sum = total_sum - left_sum;
        let sse_right = (total_sq - left_sq) - right_sum * right_sum / n_right as f64;
        let sse = sse_left + sse_right;
        let threshold = f64::midpoint(va, vb);
        if best.is_none_or(|(s, _)| sse + MIN_GAIN < s) {
            best = Some((sse, threshold));
        }
    }
    best
}

/// Grows a (sub)tree over `points`, appending nodes child-first, and
/// returns the subtree's root index.
fn build(points: &mut [Point], depth: usize, nodes: &mut Vec<Node>) -> usize {
    let n = points.len();
    let mean = if n == 0 {
        0.0
    } else {
        points.iter().map(|p| p.residual).sum::<f64>() / n as f64
    };
    let leaf = |nodes: &mut Vec<Node>| {
        nodes.push(Node::Leaf { value: mean });
        nodes.len() - 1
    };
    if depth == 0 || n < 2 * MIN_LEAF {
        return leaf(nodes);
    }
    // Fixed feature order (Mem/Uop then UPC); a strict-improvement
    // comparison keeps the earlier feature on ties.
    let sse_leaf: f64 = {
        let sq: f64 = points.iter().map(|p| p.residual * p.residual).sum();
        sq - mean * mean * n as f64
    };
    let mut chosen: Option<(f64, usize, f64)> = None;
    for feature in 0..2 {
        if let Some((sse, threshold)) = best_split_on(points, feature) {
            let improves = chosen.is_none_or(|(s, _, _)| sse + MIN_GAIN < s);
            if improves {
                chosen = Some((sse, feature, threshold));
            }
        }
    }
    let Some((sse, feature, threshold)) = chosen else {
        return leaf(nodes);
    };
    if sse + MIN_GAIN >= sse_leaf {
        return leaf(nodes); // the split does not beat a plain mean
    }
    let mut left_pts: Vec<Point> = Vec::with_capacity(n);
    let mut right_pts: Vec<Point> = Vec::with_capacity(n);
    for p in points.iter() {
        if p.feature(feature) <= threshold {
            left_pts.push(*p);
        } else {
            right_pts.push(*p);
        }
    }
    if left_pts.is_empty() || right_pts.is_empty() {
        return leaf(nodes);
    }
    let left = build(&mut left_pts, depth - 1, nodes);
    let right = build(&mut right_pts, depth - 1, nodes);
    nodes.push(Node::Split {
        feature,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

impl TreeModel {
    /// Fits the model to DAQ training records: affine `V²f`/`V³` part
    /// first, then a depth-≤ 3 residual tree over the counter features.
    /// Deterministic — same records, same tree.
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewRecords`] below eight records and
    /// [`FitError::NonFinite`] when any record carries a NaN/∞.
    pub fn fit(records: &[TrainingRecord]) -> Result<Self, FitError> {
        validate_records(records, MIN_RECORDS)?;
        let (w_dyn, w_leak) = fit_affine(records);
        let mut points: Vec<Point> = records
            .iter()
            .map(|r| Point {
                mem_uop: r.input.mem_uop.clamp(0.0, MEM_UOP_MAX),
                upc: r.input.upc.clamp(0.0, UPC_MAX),
                residual: r.measured_w - w_dyn * v2f(r.opp) - w_leak * v3(r.opp),
            })
            .collect();
        let mut nodes = Vec::new();
        let root = build(&mut points, MAX_DEPTH, &mut nodes);
        let max_leaf = nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { value } => Some(*value),
                Node::Split { .. } => None,
            })
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        Ok(Self {
            w_dyn,
            w_leak,
            nodes,
            root,
            max_leaf,
        })
    }

    /// The affine `(w_dyn, w_leak)` coefficients.
    #[must_use]
    pub fn affine_weights(&self) -> (f64, f64) {
        (self.w_dyn, self.w_leak)
    }

    /// Leaves in the residual tree.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Walks the residual tree. Child indices are strictly smaller than
    /// their parent's, so the walk terminates; a structurally impossible
    /// index reads as a zero residual rather than a panic.
    fn residual(&self, mem_uop: f64, upc: f64) -> f64 {
        let mut idx = self.root;
        loop {
            match self.nodes.get(idx) {
                Some(Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                }) => {
                    let v = if *feature == 0 { mem_uop } else { upc };
                    let next = if v <= *threshold { *left } else { *right };
                    if next >= idx {
                        return 0.0; // corrupt topology: refuse to loop
                    }
                    idx = next;
                }
                Some(Node::Leaf { value }) => return *value,
                None => return 0.0,
            }
        }
    }
}

impl PowerModel for TreeModel {
    fn power(&self, opp: OperatingPoint, input: &PowerInput) -> f64 {
        let mem_uop = input.mem_uop.clamp(0.0, MEM_UOP_MAX);
        let upc = input.upc.clamp(0.0, UPC_MAX);
        let raw = self.w_dyn * v2f(opp) + self.w_leak * v3(opp) + self.residual(mem_uop, upc);
        raw.max(0.0)
    }

    /// Affine part plus the largest leaf: the tree term is
    /// opp-independent and every inference lands on some leaf, so this
    /// dominates [`power`](Self::power) for every input.
    fn worst_case(&self, opp: OperatingPoint) -> f64 {
        (self.w_dyn * v2f(opp) + self.w_leak * v3(opp) + self.max_leaf).max(0.0)
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::synthetic_records;
    use super::*;
    use crate::opp::OperatingPointTable;

    #[test]
    fn fit_is_deterministic_and_splits_something() {
        let records = synthetic_records(42);
        let a = TreeModel::fit(&records).unwrap();
        let b = TreeModel::fit(&records).unwrap();
        assert_eq!(a, b, "same records, same tree");
        assert!(a.leaf_count() >= 2, "the sweep has residual structure");
        assert!(a.affine_weights().0 >= 0.0 && a.affine_weights().1 >= 0.0);
    }

    #[test]
    fn fit_tracks_the_envelope() {
        let records = synthetic_records(42);
        let m = TreeModel::fit(&records).unwrap();
        let mae = records
            .iter()
            .map(|r| (m.power(r.opp, &r.input) - r.measured_w).abs())
            .sum::<f64>()
            / records.len() as f64;
        assert!(mae < 1.0, "tree should track the envelope, MAE {mae}");
    }

    #[test]
    fn worst_case_bounds_power_everywhere() {
        let records = synthetic_records(11);
        let m = TreeModel::fit(&records).unwrap();
        for (_, opp) in OperatingPointTable::pentium_m().iter() {
            for mu in [0.0, 0.005, 0.02, MEM_UOP_MAX, 3.0] {
                for upc in [0.0, 0.5, 2.0, UPC_MAX, 50.0] {
                    let p = m.power(opp, &PowerInput::from_counters(mu, upc));
                    assert!(p <= m.worst_case(opp) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn power_is_monotone_along_the_table() {
        let records = synthetic_records(5);
        let m = TreeModel::fit(&records).unwrap();
        let input = PowerInput::from_counters(0.01, 1.5);
        let powers: Vec<f64> = OperatingPointTable::pentium_m()
            .iter()
            .map(|(_, opp)| m.power(opp, &input))
            .collect();
        for w in powers.windows(2) {
            assert!(w[0] >= w[1], "non-increasing along the table: {powers:?}");
        }
    }

    #[test]
    fn rejects_degenerate_training_sets() {
        let records = synthetic_records(1);
        assert!(matches!(
            TreeModel::fit(&records[..4]),
            Err(FitError::TooFewRecords { .. })
        ));
        let mut bad = records.clone();
        bad[3].measured_w = f64::NAN;
        assert!(matches!(TreeModel::fit(&bad), Err(FitError::NonFinite)));
    }

    #[test]
    fn inference_is_cheap_and_total() {
        // Every grid point evaluates without panicking, including inputs
        // far outside the clamp boxes.
        let records = synthetic_records(2);
        let m = TreeModel::fit(&records).unwrap();
        let opp = OperatingPointTable::pentium_m().slowest();
        for mu in [-1.0, 0.0, 0.5, f64::MAX] {
            for upc in [-3.0, 0.0, 7.9, f64::MAX] {
                assert!(m
                    .power(opp, &PowerInput::from_counters(mu, upc))
                    .is_finite());
            }
        }
    }
}
