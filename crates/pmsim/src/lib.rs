//! # livephase-pmsim
//!
//! A Pentium-M-like platform simulator — the *substrate* on which the
//! MICRO 2006 phase-prediction paper's deployed system runs. The paper used
//! a real laptop; this crate provides a faithful analytical stand-in with
//! the pieces the phase predictor and DVFS governor interact with:
//!
//! * [`opp`] — the six SpeedStep operating points of the paper's Table 2;
//! * [`timing`] — a two-component execution-time model in which core work
//!   scales with frequency and memory work does not. This single structural
//!   property yields the paper's two key observations (Section 4 /
//!   Figure 7): **Mem/Uop is DVFS-invariant** while **UPC is not**;
//! * [`power`] — the power-model zoo behind the [`power::PowerModel`]
//!   trait: the analytic `C·V²·f` + leakage formula calibrated to the
//!   Pentium-M package envelope measured in the paper (≈ 13 W at
//!   1.5 GHz / 1.484 V down to ≈ 3 W at 600 MHz / 0.956 V), plus learned
//!   least-squares and regression-tree backends fit against DAQ output;
//! * [`pmc`] — performance monitoring counters (`UOPS_RETIRED`,
//!   `BUS_TRAN_MEM`, …) with an overflow-triggered performance monitoring
//!   interrupt (PMI), used to sample execution every 100 M uops;
//! * [`dvfs`] — the SpeedStep mode-set interface with transition latency;
//! * [`cpu`] — the glue: push work in, receive PMIs out, change the
//!   operating point between intervals;
//! * [`trace`] — the piecewise-constant power waveform the simulated CPU
//!   emits, consumed by the `livephase-daq` measurement rig.
//!
//! ## Example: one interval at two frequencies
//!
//! ```
//! use livephase_pmsim::{timing::{IntervalWork, TimingModel}, opp::Frequency};
//!
//! let timing = TimingModel::pentium_m();
//! let work = IntervalWork::new(100_000_000, 80_000_000, 2_000_000, 0.7, 4.0);
//! let fast = timing.execute(&work, Frequency::from_mhz(1500));
//! let slow = timing.execute(&work, Frequency::from_mhz(600));
//! // Memory work does not scale, so slowing the clock 2.5x costs < 2.5x time:
//! assert!(slow.seconds / fast.seconds < 2.5);
//! // ... and Mem/Uop is identical at both operating points by construction.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cpu;
pub mod dvfs;
pub mod opp;
pub mod pmc;
pub mod power;
pub mod thermal;
pub mod timing;
pub mod trace;

pub use cpu::{Cpu, PlatformConfig, PmiRecord, VcpuContext};
pub use dvfs::DvfsController;
pub use opp::{Frequency, OperatingPoint, OperatingPointTable, Voltage};
pub use pmc::{CounterFile, Event};
pub use power::{
    AnalyticModel, FitError, LinearModel, PowerInput, PowerModel, PowerModelKind, TrainingRecord,
    TreeModel,
};
pub use thermal::{ThermalModel, ThermalState};
pub use timing::{Execution, IntervalWork, TimingModel};
pub use trace::{PowerSegment, PowerTrace};
