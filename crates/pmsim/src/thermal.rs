//! A lumped-parameter thermal model of the processor package.
//!
//! The paper names *dynamic thermal management* as a direct application of
//! its phase-prediction framework (Sections 1 and 8). To exercise that
//! claim the platform needs a thermal substrate: the standard first-order
//! RC model used throughout the DTM literature (e.g. Skadron et al.,
//! reference \[25\] of the paper):
//!
//! ```text
//! C_th · dT/dt = P − (T − T_amb) / R_th
//! ```
//!
//! with the closed-form step response used for piecewise-constant power:
//!
//! ```text
//! T(t) = T_ss + (T_0 − T_ss) · e^(−t/τ),   T_ss = T_amb + P·R_th,  τ = R_th·C_th
//! ```

use serde::{Deserialize, Serialize};

/// First-order package thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Junction-to-ambient thermal resistance, in °C per watt.
    pub r_th: f64,
    /// Thermal capacitance, in joules per °C.
    pub c_th: f64,
    /// Ambient temperature, in °C.
    pub t_ambient: f64,
}

impl ThermalModel {
    /// A laptop-class Pentium-M package: ≈ 3.2 °C/W junction-to-ambient
    /// (small heat pipe + fan), ≈ 4 J/°C, 35 °C chassis ambient. At the
    /// ≈ 13 W peak this settles near 77 °C; at the 600 MHz floor near
    /// 43 °C — bracketing the ≈ 100 °C junction limit with DTM headroom.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            r_th: 3.2,
            c_th: 4.0,
            t_ambient: 35.0,
        }
    }

    /// The thermal time constant `τ = R·C`, in seconds.
    #[must_use]
    pub fn time_constant_s(&self) -> f64 {
        self.r_th * self.c_th
    }

    /// Steady-state temperature under constant power, in °C.
    #[must_use]
    pub fn steady_state(&self, power_w: f64) -> f64 {
        self.t_ambient + power_w * self.r_th
    }

    /// Evolves a temperature for `seconds` under constant `power_w`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or any argument is non-finite.
    #[must_use]
    pub fn step(&self, t_now: f64, power_w: f64, seconds: f64) -> f64 {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "time step must be finite and non-negative"
        );
        assert!(
            t_now.is_finite() && power_w.is_finite(),
            "non-finite inputs"
        );
        let t_ss = self.steady_state(power_w);
        t_ss + (t_now - t_ss) * (-seconds / self.time_constant_s()).exp()
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::pentium_m()
    }
}

/// A temperature integrator over a sequence of power segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    model: ThermalModel,
    temperature_c: f64,
    peak_c: f64,
}

impl ThermalState {
    /// Starts at ambient temperature.
    #[must_use]
    pub fn new(model: ThermalModel) -> Self {
        Self {
            model,
            temperature_c: model.t_ambient,
            peak_c: model.t_ambient,
        }
    }

    /// Current junction temperature, in °C.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Highest temperature seen so far, in °C.
    #[must_use]
    pub fn peak_c(&self) -> f64 {
        self.peak_c
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> ThermalModel {
        self.model
    }

    /// Advances the state through a constant-power slice.
    pub fn advance(&mut self, power_w: f64, seconds: f64) {
        // Within a slice the trajectory is monotone toward steady state,
        // so the peak is at whichever end is hotter.
        let t_end = self.model.step(self.temperature_c, power_w, seconds);
        let t_ss = self.model.steady_state(power_w);
        let slice_peak = if t_ss >= self.temperature_c {
            t_end // heating: end of slice is hottest
        } else {
            self.temperature_c // cooling: start was hottest
        };
        self.peak_c = self.peak_c.max(slice_peak);
        self.temperature_c = t_end;
    }

    /// Temperature the package would settle at if the given power
    /// persisted — what a *predictive* thermal manager evaluates before
    /// committing to a setting.
    #[must_use]
    pub fn projected_steady_state(&self, power_w: f64) -> f64 {
        self.model.steady_state(power_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::pentium_m()
    }

    #[test]
    fn steady_states_bracket_the_envelope() {
        let m = model();
        let hot = m.steady_state(13.0);
        let cold = m.steady_state(2.5);
        assert!((70.0..90.0).contains(&hot), "peak steady state {hot}");
        assert!((40.0..50.0).contains(&cold), "floor steady state {cold}");
    }

    #[test]
    fn step_converges_exponentially() {
        let m = model();
        let t_ss = m.steady_state(10.0);
        // One time constant covers ~63% of the gap.
        let t1 = m.step(m.t_ambient, 10.0, m.time_constant_s());
        let covered = (t1 - m.t_ambient) / (t_ss - m.t_ambient);
        assert!((covered - 0.632).abs() < 0.01, "covered {covered}");
        // Many time constants: fully settled.
        let t_inf = m.step(m.t_ambient, 10.0, 50.0 * m.time_constant_s());
        assert!((t_inf - t_ss).abs() < 1e-6);
    }

    #[test]
    fn zero_time_is_identity() {
        let m = model();
        assert_eq!(m.step(55.0, 10.0, 0.0), 55.0);
    }

    #[test]
    fn cooling_works_too() {
        let m = model();
        let t = m.step(90.0, 2.0, 10.0 * m.time_constant_s());
        assert!((t - m.steady_state(2.0)).abs() < 0.1);
        assert!(t < 90.0);
    }

    #[test]
    fn state_tracks_peak_correctly() {
        let mut s = ThermalState::new(model());
        s.advance(13.0, 100.0); // heat to ~steady
        let hot = s.temperature_c();
        s.advance(2.0, 100.0); // cool down
        assert!(s.temperature_c() < hot);
        assert!((s.peak_c() - hot).abs() < 1e-9, "peak was the hot plateau");
    }

    #[test]
    fn peak_during_cooling_is_slice_start() {
        let mut s = ThermalState::new(model());
        s.advance(13.0, 1000.0);
        let before = s.temperature_c();
        s.advance(0.0, 0.001); // brief cooling slice
        assert!((s.peak_c() - before).abs() < 1e-9);
    }

    #[test]
    fn projection_matches_model() {
        let s = ThermalState::new(model());
        assert_eq!(s.projected_steady_state(10.0), model().steady_state(10.0));
    }

    #[test]
    #[should_panic(expected = "time step")]
    fn negative_time_rejected() {
        let _ = model().step(40.0, 5.0, -1.0);
    }
}
