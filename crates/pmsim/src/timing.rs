//! The execution-time model.
//!
//! Interval execution time is split into two components:
//!
//! ```text
//! T(f) = uops · cpi_core / f   +   mem_transactions · (L_mem / MLP)
//!        └── core work, scales ──┘   └── memory work, fixed in *seconds* ──┘
//! ```
//!
//! * `cpi_core` — core (non-memory-stall) cycles per retired micro-op;
//! * `L_mem` — main-memory round-trip latency in seconds, set by the memory
//!   subsystem and therefore **independent of the core clock**;
//! * `MLP` — memory-level parallelism: the average number of outstanding
//!   memory transactions whose latencies overlap.
//!
//! This two-component structure is the entire physics behind Section 4 of
//! the paper: Mem/Uop (a ratio of two retirement counts) is invariant under
//! DVFS, while UPC = `uops / (T·f)` rises as frequency falls for any
//! workload with a non-zero memory component — memory stalls complete in
//! fewer *core cycles* at lower clocks (Figure 7).

use crate::opp::Frequency;
use serde::{Deserialize, Serialize};

/// A quantum of work presented to the simulated CPU.
///
/// Workload generators emit these; the paper's sampling granularity makes
/// 100 M-uop chunks the natural unit, but any size works — the CPU splits
/// chunks at PMI boundaries itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalWork {
    /// Micro-ops retired by this chunk.
    pub uops: u64,
    /// Architectural instructions retired (uops ≥ instructions on P6-style
    /// cores that crack instructions into uops).
    pub instructions: u64,
    /// Memory bus transactions issued.
    pub mem_transactions: u64,
    /// Core cycles per uop excluding memory stalls.
    pub cpi_core: f64,
    /// Memory-level parallelism (≥ 1): overlap factor dividing the memory
    /// stall component.
    pub mlp: f64,
}

impl IntervalWork {
    /// Creates a work chunk.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is zero, `cpi_core` is not positive/finite, or
    /// `mlp < 1`.
    #[must_use]
    pub fn new(
        uops: u64,
        instructions: u64,
        mem_transactions: u64,
        cpi_core: f64,
        mlp: f64,
    ) -> Self {
        assert!(uops > 0, "work must retire at least one uop");
        assert!(
            cpi_core.is_finite() && cpi_core > 0.0,
            "cpi_core must be positive and finite, got {cpi_core}"
        );
        assert!(mlp.is_finite() && mlp >= 1.0, "MLP must be >= 1, got {mlp}");
        Self {
            uops,
            instructions,
            mem_transactions,
            cpi_core,
            mlp,
        }
    }

    /// Memory transactions per uop — the phase-defining metric this chunk
    /// will exhibit on any platform at any frequency.
    #[must_use]
    pub fn mem_uop(&self) -> f64 {
        self.mem_transactions as f64 / self.uops as f64
    }

    /// Splits off the first `uops` micro-ops of this chunk, scaling the
    /// other counts proportionally (rounding toward the first part), and
    /// returns `(first, rest)`. `rest` is `None` when `uops` covers the
    /// whole chunk.
    ///
    /// Used by the CPU to stop exactly at a PMI boundary.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is zero or exceeds the chunk size.
    #[must_use]
    pub fn split_at_uops(&self, uops: u64) -> (IntervalWork, Option<IntervalWork>) {
        assert!(uops >= 1 && uops <= self.uops, "split point out of range");
        if uops == self.uops {
            return (*self, None);
        }
        let frac = uops as f64 / self.uops as f64;
        let instr_first = (self.instructions as f64 * frac).round() as u64;
        let mem_first = (self.mem_transactions as f64 * frac).round() as u64;
        let first = IntervalWork {
            uops,
            instructions: instr_first.min(self.instructions),
            mem_transactions: mem_first.min(self.mem_transactions),
            cpi_core: self.cpi_core,
            mlp: self.mlp,
        };
        let rest = IntervalWork {
            uops: self.uops - uops,
            instructions: self.instructions - first.instructions,
            mem_transactions: self.mem_transactions - first.mem_transactions,
            cpi_core: self.cpi_core,
            mlp: self.mlp,
        };
        (first, Some(rest))
    }
}

/// The result of executing a work chunk at a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Wall-clock time of the chunk.
    pub seconds: f64,
    /// Core cycles elapsed (`seconds · f`).
    pub cycles: f64,
    /// Seconds spent in core (non-memory) work.
    pub core_seconds: f64,
    /// Seconds spent stalled on memory.
    pub mem_seconds: f64,
}

impl Execution {
    /// Fraction of time the core was doing non-memory work, in `[0, 1]`.
    /// Drives the activity factor of the power model.
    #[must_use]
    pub fn core_fraction(&self) -> f64 {
        if self.seconds == 0.0 {
            1.0
        } else {
            self.core_seconds / self.seconds
        }
    }
}

/// The platform timing model: the memory subsystem's effective latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Main-memory round-trip latency in nanoseconds (core-clock
    /// independent).
    pub mem_latency_ns: f64,
}

impl TimingModel {
    /// Timing calibrated to the paper's Pentium-M platform: ≈ 110 ns
    /// effective main-memory latency (DDR-era laptop memory). With SPEC-like
    /// MLP values of 2–5 this reproduces the UPC-vs-frequency sensitivities
    /// of Figure 7 (no dependence when CPU-bound, up to ≈ 80 % when
    /// memory-bound) and the UPC/Mem-Uop boundary of Figure 6.
    #[must_use]
    pub fn pentium_m() -> Self {
        Self {
            mem_latency_ns: 110.0,
        }
    }

    /// Executes `work` at frequency `f`.
    #[must_use]
    pub fn execute(&self, work: &IntervalWork, f: Frequency) -> Execution {
        let core_seconds = work.uops as f64 * work.cpi_core / f.hz();
        let mem_seconds = work.mem_transactions as f64 * (self.mem_latency_ns * 1e-9) / work.mlp;
        let seconds = core_seconds + mem_seconds;
        Execution {
            seconds,
            cycles: seconds * f.hz(),
            core_seconds,
            mem_seconds,
        }
    }

    /// Micro-ops per cycle of `work` at frequency `f`.
    #[must_use]
    pub fn upc(&self, work: &IntervalWork, f: Frequency) -> f64 {
        let e = self.execute(work, f);
        work.uops as f64 / e.cycles
    }

    /// Billions of instructions per second of `work` at frequency `f`.
    #[must_use]
    pub fn bips(&self, work: &IntervalWork, f: Frequency) -> f64 {
        let e = self.execute(work, f);
        work.instructions as f64 / e.seconds / 1e9
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(mhz: u32) -> Frequency {
        Frequency::from_mhz(mhz)
    }

    fn cpu_bound() -> IntervalWork {
        IntervalWork::new(100_000_000, 80_000_000, 0, 0.5, 1.0)
    }

    fn mem_bound() -> IntervalWork {
        IntervalWork::new(100_000_000, 80_000_000, 4_000_000, 0.8, 4.0)
    }

    #[test]
    fn cpu_bound_time_scales_inversely_with_frequency() {
        let t = TimingModel::pentium_m();
        let fast = t.execute(&cpu_bound(), f(1500));
        let slow = t.execute(&cpu_bound(), f(600));
        assert!((slow.seconds / fast.seconds - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cpu_bound_upc_is_frequency_invariant() {
        let t = TimingModel::pentium_m();
        let u1 = t.upc(&cpu_bound(), f(1500));
        let u2 = t.upc(&cpu_bound(), f(600));
        assert!((u1 - u2).abs() < 1e-9, "no memory work => UPC constant");
        assert!((u1 - 2.0).abs() < 1e-9, "UPC = 1/cpi_core");
    }

    #[test]
    fn mem_bound_upc_rises_at_low_frequency() {
        let t = TimingModel::pentium_m();
        let u_fast = t.upc(&mem_bound(), f(1500));
        let u_slow = t.upc(&mem_bound(), f(600));
        assert!(
            u_slow > u_fast * 1.2,
            "memory stalls take fewer core cycles at low f: {u_fast} -> {u_slow}"
        );
    }

    #[test]
    fn mem_seconds_do_not_scale() {
        let t = TimingModel::pentium_m();
        let a = t.execute(&mem_bound(), f(1500));
        let b = t.execute(&mem_bound(), f(600));
        assert!((a.mem_seconds - b.mem_seconds).abs() < 1e-15);
        assert!(b.core_seconds > a.core_seconds);
    }

    #[test]
    fn mem_uop_is_a_pure_work_property() {
        let w = mem_bound();
        assert!((w.mem_uop() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_totals() {
        let w = mem_bound();
        let (a, b) = w.split_at_uops(30_000_000);
        let b = b.unwrap();
        assert_eq!(a.uops + b.uops, w.uops);
        assert_eq!(a.instructions + b.instructions, w.instructions);
        assert_eq!(a.mem_transactions + b.mem_transactions, w.mem_transactions);
        assert_eq!(a.cpi_core, w.cpi_core);
        // Mem/Uop of both halves matches the whole (proportional split).
        assert!((a.mem_uop() - w.mem_uop()).abs() < 1e-6);
        assert!((b.mem_uop() - w.mem_uop()).abs() < 1e-6);
    }

    #[test]
    fn split_at_full_size_returns_none_rest() {
        let w = cpu_bound();
        let (a, b) = w.split_at_uops(w.uops);
        assert_eq!(a, w);
        assert!(b.is_none());
    }

    #[test]
    #[should_panic(expected = "split point out of range")]
    fn split_beyond_size_panics() {
        let _ = cpu_bound().split_at_uops(200_000_000);
    }

    #[test]
    fn execution_core_fraction() {
        let t = TimingModel::pentium_m();
        let e = t.execute(&cpu_bound(), f(1500));
        assert!((e.core_fraction() - 1.0).abs() < 1e-12);
        let e = t.execute(&mem_bound(), f(1500));
        assert!(e.core_fraction() < 1.0 && e.core_fraction() > 0.0);
    }

    #[test]
    fn bips_drops_less_than_frequency_for_mem_bound() {
        let t = TimingModel::pentium_m();
        let hi = t.bips(&mem_bound(), f(1500));
        let lo = t.bips(&mem_bound(), f(600));
        // 2.5x frequency drop must cost well under 2.5x BIPS for memory work.
        assert!(hi / lo < 2.0, "BIPS ratio {}", hi / lo);
    }

    #[test]
    #[should_panic(expected = "at least one uop")]
    fn zero_uop_work_rejected() {
        let _ = IntervalWork::new(0, 0, 0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "MLP")]
    fn sub_one_mlp_rejected() {
        let _ = IntervalWork::new(1, 1, 0, 1.0, 0.5);
    }
}
