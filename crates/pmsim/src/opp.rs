//! Operating points: frequency/voltage pairs and the SpeedStep table.
//!
//! The paper's prototype (a Pentium-M laptop with Intel SpeedStep) exposes
//! six operating points, reproduced in its Table 2:
//!
//! | Setting | Frequency | Voltage |
//! |---------|-----------|---------|
//! | 0       | 1500 MHz  | 1484 mV |
//! | 1       | 1400 MHz  | 1452 mV |
//! | 2       | 1200 MHz  | 1356 mV |
//! | 3       | 1000 MHz  | 1228 mV |
//! | 4       |  800 MHz  | 1116 mV |
//! | 5       |  600 MHz  |  956 mV |

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A core clock frequency, stored in megahertz.
///
/// ```
/// use livephase_pmsim::Frequency;
/// let f = Frequency::from_mhz(1500);
/// assert_eq!(f.mhz(), 1500);
/// assert_eq!(f.hz(), 1.5e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    #[must_use]
    pub fn from_mhz(mhz: u32) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        Self(mhz)
    }

    /// The frequency in megahertz.
    #[must_use]
    pub fn mhz(self) -> u32 {
        self.0
    }

    /// The frequency in hertz, as a float for timing arithmetic.
    #[must_use]
    pub fn hz(self) -> f64 {
        f64::from(self.0) * 1e6
    }

    /// The frequency in gigahertz.
    #[must_use]
    pub fn ghz(self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// A core supply voltage, stored in millivolts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Voltage(u32);

impl Voltage {
    /// Creates a voltage from millivolts.
    ///
    /// # Panics
    ///
    /// Panics if `mv` is zero.
    #[must_use]
    pub fn from_mv(mv: u32) -> Self {
        assert!(mv > 0, "voltage must be positive");
        Self(mv)
    }

    /// The voltage in millivolts.
    #[must_use]
    pub fn mv(self) -> u32 {
        self.0
    }

    /// The voltage in volts, as a float for power arithmetic.
    #[must_use]
    pub fn volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mV", self.0)
    }
}

/// One DVFS setting: a frequency and the matching supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock frequency.
    pub frequency: Frequency,
    /// Core supply voltage.
    pub voltage: Voltage,
}

impl OperatingPoint {
    /// Creates an operating point.
    #[must_use]
    pub fn new(frequency: Frequency, voltage: Voltage) -> Self {
        Self { frequency, voltage }
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.frequency, self.voltage)
    }
}

/// Error constructing an [`OperatingPointTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OppTableError {
    /// The table must hold at least one operating point.
    Empty,
    /// Points must be strictly decreasing in frequency (and, physically,
    /// voltage should not increase as frequency decreases).
    NotDecreasing {
        /// Index of the first out-of-order entry.
        index: usize,
    },
}

impl fmt::Display for OppTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "operating point table must not be empty"),
            Self::NotDecreasing { index } => write!(
                f,
                "operating points must be strictly decreasing in frequency and \
                 non-increasing in voltage (violated at index {index})"
            ),
        }
    }
}

impl Error for OppTableError {}

/// The set of operating points a platform supports, ordered from fastest
/// (index 0) to slowest.
///
/// ```
/// use livephase_pmsim::OperatingPointTable;
/// let t = OperatingPointTable::pentium_m();
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.fastest().frequency.mhz(), 1500);
/// assert_eq!(t.slowest().frequency.mhz(), 600);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatingPointTable {
    points: Vec<OperatingPoint>,
}

impl OperatingPointTable {
    /// Creates a table from points ordered fastest-first.
    ///
    /// # Errors
    ///
    /// Returns [`OppTableError`] if the list is empty, frequencies are not
    /// strictly decreasing, or voltages increase as frequency decreases.
    pub fn new(points: Vec<OperatingPoint>) -> Result<Self, OppTableError> {
        if points.is_empty() {
            return Err(OppTableError::Empty);
        }
        for (i, (a, b)) in points.iter().zip(points.iter().skip(1)).enumerate() {
            if b.frequency >= a.frequency || b.voltage > a.voltage {
                return Err(OppTableError::NotDecreasing { index: i + 1 });
            }
        }
        Ok(Self { points })
    }

    /// The paper's Table 2: the six SpeedStep settings of the Pentium-M
    /// prototype machine.
    #[must_use]
    pub fn pentium_m() -> Self {
        let mk = |mhz, mv| OperatingPoint::new(Frequency::from_mhz(mhz), Voltage::from_mv(mv));
        let table = Self::new(vec![
            mk(1500, 1484),
            mk(1400, 1452),
            mk(1200, 1356),
            mk(1000, 1228),
            mk(800, 1116),
            mk(600, 956),
        ]);
        match table {
            Ok(table) => table,
            Err(_) => unreachable!("static Table 2 points are valid"),
        }
    }

    /// Number of operating points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A table is never empty; this always returns `false` and exists for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The operating point at `index` (0 = fastest).
    ///
    /// Returns `None` when out of range.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<OperatingPoint> {
        self.points.get(index).copied()
    }

    /// The highest-frequency point (index 0). The paper's *baseline
    /// unmanaged system* always runs here.
    #[must_use]
    pub fn fastest(&self) -> OperatingPoint {
        self.points[0] // lint:allow(no-panic-path): `new` rejects empty tables
    }

    /// The lowest-frequency point.
    #[must_use]
    pub fn slowest(&self) -> OperatingPoint {
        self.points
            .last()
            .copied()
            .unwrap_or_else(|| self.fastest())
    }

    /// All points, fastest first.
    #[must_use]
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Iterates over `(index, point)` pairs, fastest first.
    pub fn iter(&self) -> impl Iterator<Item = (usize, OperatingPoint)> + '_ {
        self.points.iter().copied().enumerate()
    }

    /// Index of the point with the given frequency, if present.
    #[must_use]
    pub fn index_of(&self, frequency: Frequency) -> Option<usize> {
        self.points.iter().position(|p| p.frequency == frequency)
    }
}

impl Default for OperatingPointTable {
    fn default() -> Self {
        Self::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_matches_table2() {
        let t = OperatingPointTable::pentium_m();
        let expect = [
            (1500, 1484),
            (1400, 1452),
            (1200, 1356),
            (1000, 1228),
            (800, 1116),
            (600, 956),
        ];
        assert_eq!(t.len(), expect.len());
        for (i, (mhz, mv)) in expect.iter().enumerate() {
            let p = t.get(i).unwrap();
            assert_eq!(p.frequency.mhz(), *mhz);
            assert_eq!(p.voltage.mv(), *mv);
        }
    }

    #[test]
    fn unit_conversions() {
        let f = Frequency::from_mhz(800);
        assert_eq!(f.hz(), 8e8);
        assert!((f.ghz() - 0.8).abs() < 1e-12);
        let v = Voltage::from_mv(1116);
        assert!((v.volts() - 1.116).abs() < 1e-12);
    }

    #[test]
    fn rejects_unordered_tables() {
        let mk = |mhz, mv| OperatingPoint::new(Frequency::from_mhz(mhz), Voltage::from_mv(mv));
        assert_eq!(OperatingPointTable::new(vec![]), Err(OppTableError::Empty));
        assert!(matches!(
            OperatingPointTable::new(vec![mk(600, 956), mk(1500, 1484)]),
            Err(OppTableError::NotDecreasing { index: 1 })
        ));
        // Voltage rising while frequency falls is physically wrong.
        assert!(matches!(
            OperatingPointTable::new(vec![mk(1500, 1000), mk(1400, 1100)]),
            Err(OppTableError::NotDecreasing { index: 1 })
        ));
    }

    #[test]
    fn index_of_finds_points() {
        let t = OperatingPointTable::pentium_m();
        assert_eq!(t.index_of(Frequency::from_mhz(1200)), Some(2));
        assert_eq!(t.index_of(Frequency::from_mhz(1234)), None);
    }

    #[test]
    fn displays() {
        let p = OperatingPointTable::pentium_m().fastest();
        assert_eq!(p.to_string(), "(1500 MHz, 1484 mV)");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_mhz(0);
    }

    #[test]
    #[should_panic(expected = "voltage must be positive")]
    fn zero_voltage_rejected() {
        let _ = Voltage::from_mv(0);
    }
}
