//! The DVFS mode-set interface (Intel SpeedStep on the paper's platform).
//!
//! The PMI handler translates the predicted phase into one of the table's
//! settings and, *only if it differs from the current one*, writes the mode
//! set registers (Figure 8). A transition stalls execution briefly; the
//! paper quotes combined handler + DVFS overheads of 10–100 µs against the
//! ≈ 100 ms sampling interval, i.e. invisible in practice — but we model
//! the stall anyway so that overheads show up honestly in the results.

use crate::opp::{OperatingPoint, OperatingPointTable};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when requesting a DVFS setting outside the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSetting {
    /// The requested setting index.
    pub requested: usize,
    /// Number of settings the platform supports.
    pub available: usize,
}

impl fmt::Display for InvalidSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DVFS setting {} out of range (platform has {} settings)",
            self.requested, self.available
        )
    }
}

impl Error for InvalidSetting {}

/// The SpeedStep-like controller: current setting plus transition cost.
///
/// ```
/// use livephase_pmsim::{DvfsController, OperatingPointTable};
/// let mut d = DvfsController::new(OperatingPointTable::pentium_m(), 50e-6);
/// assert_eq!(d.current().frequency.mhz(), 1500);
/// let stall = d.request(5).unwrap();
/// assert_eq!(stall, 50e-6);                      // a real switch stalls
/// assert_eq!(d.request(5).unwrap(), 0.0);        // same setting: no cost
/// assert_eq!(d.current().frequency.mhz(), 600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsController {
    table: OperatingPointTable,
    current: usize,
    transition_latency_s: f64,
    transitions: u64,
}

impl DvfsController {
    /// Creates a controller starting at the fastest setting (index 0) —
    /// how an unmanaged system boots.
    ///
    /// # Panics
    ///
    /// Panics if `transition_latency_s` is negative or non-finite.
    #[must_use]
    pub fn new(table: OperatingPointTable, transition_latency_s: f64) -> Self {
        assert!(
            transition_latency_s.is_finite() && transition_latency_s >= 0.0,
            "transition latency must be finite and non-negative"
        );
        Self {
            table,
            current: 0,
            transition_latency_s,
            transitions: 0,
        }
    }

    /// The current operating point.
    #[must_use]
    pub fn current(&self) -> OperatingPoint {
        // `set` rejects out-of-range indices, so the fallback never fires.
        self.table
            .get(self.current)
            .unwrap_or_else(|| self.table.fastest())
    }

    /// The current setting index (0 = fastest).
    #[must_use]
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The setting table.
    #[must_use]
    pub fn table(&self) -> &OperatingPointTable {
        &self.table
    }

    /// Requests setting `index`, returning the stall time (seconds) the
    /// switch costs: zero when the setting is unchanged, the transition
    /// latency otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSetting`] when `index` is out of range; the current
    /// setting is left untouched.
    pub fn request(&mut self, index: usize) -> Result<f64, InvalidSetting> {
        if index >= self.table.len() {
            return Err(InvalidSetting {
                requested: index,
                available: self.table.len(),
            });
        }
        if index == self.current {
            return Ok(0.0);
        }
        self.current = index;
        self.transitions += 1;
        Ok(self.transition_latency_s)
    }

    /// Number of actual voltage/frequency switches performed.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The per-switch stall time in seconds.
    #[must_use]
    pub fn transition_latency_s(&self) -> f64 {
        self.transition_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DvfsController {
        DvfsController::new(OperatingPointTable::pentium_m(), 50e-6)
    }

    #[test]
    fn boots_at_fastest() {
        assert_eq!(ctl().current().frequency.mhz(), 1500);
        assert_eq!(ctl().current_index(), 0);
    }

    #[test]
    fn switch_costs_latency_once() {
        let mut d = ctl();
        assert_eq!(d.request(3).unwrap(), 50e-6);
        assert_eq!(d.request(3).unwrap(), 0.0, "no-op requests are free");
        assert_eq!(d.transitions(), 1);
        assert_eq!(d.current().frequency.mhz(), 1000);
    }

    #[test]
    fn out_of_range_is_an_error_and_harmless() {
        let mut d = ctl();
        let err = d.request(6).unwrap_err();
        assert_eq!(err.requested, 6);
        assert_eq!(err.available, 6);
        assert_eq!(d.current_index(), 0, "failed request leaves state alone");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn counts_every_real_transition() {
        let mut d = ctl();
        for i in [1usize, 2, 1, 0, 5, 5, 0] {
            let _ = d.request(i).unwrap();
        }
        assert_eq!(d.transitions(), 6, "the repeated 5 is free");
    }

    #[test]
    #[should_panic(expected = "transition latency")]
    fn negative_latency_rejected() {
        let _ = DvfsController::new(OperatingPointTable::pentium_m(), -1.0);
    }
}
